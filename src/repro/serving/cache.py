"""Persistent completion cache shared across processes.

The in-memory LRU of :class:`~repro.llm.cache.CachedLLM` dies with the
process; re-running an experiment or restarting the service re-bills every
prompt.  :class:`PersistentCache` spills completions to append-only JSONL
shard files keyed by prompt hash, so a warmed cache makes reruns near-free:

* **append-only** — a put is one ``O_APPEND`` write of one JSON line; there is
  no rewrite-in-place, so a crash can at worst truncate the final line (which
  the loader skips);
* **sharded** — keys are spread over ``shards`` files by hash prefix, keeping
  individual files small and letting several processes warm disjoint shards
  with less write contention;
* **last-wins** — re-putting a prompt appends a new line; on load the latest
  line for a key is the value served.

The class satisfies the ``CacheBackend`` protocol of
:class:`~repro.llm.cache.CachedLLM` (``get``/``put``) and is thread-safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from ..obs.events import emit_event
from ..obs.metrics import MetricsRegistry, get_default_registry


def prompt_key(prompt: str) -> str:
    """Stable content key for a prompt (SHA-256 hex digest)."""
    return hashlib.sha256(prompt.encode("utf-8")).hexdigest()


class PersistentCache:
    """Disk-backed prompt → completion store (JSONL shard files).

    Parameters
    ----------
    path:
        Directory holding the shard files (created if missing).
    shards:
        Number of shard files keys are spread over.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        shards: int = 16,
        metrics: MetricsRegistry | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be positive")
        self.path = Path(path)
        self.shards = shards
        self.path.mkdir(parents=True, exist_ok=True)
        metrics = metrics or get_default_registry()
        self._m_puts = metrics.counter("pcache.puts")
        self._m_bytes = metrics.counter("pcache.bytes_written")
        # Per-directory gauge: cluster shards each report their own size.
        self._m_entries = metrics.gauge(f"pcache.entries.{self.path.name}")
        self._lock = threading.Lock()
        self._entries: dict[str, str] = {}
        self._load()
        self._m_entries.set(len(self._entries))

    # -------------------------------------------------------------------- io
    def _shard_file(self, key: str) -> Path:
        shard = int(key[:8], 16) % self.shards
        return self.path / f"shard-{shard:02d}.jsonl"

    def _load(self) -> None:
        torn = 0
        stale = 0
        for shard_path in sorted(self.path.glob("shard-*.jsonl")):
            with open(shard_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        torn += 1
                        continue  # torn final line from a crashed writer
                    key, text = entry.get("key"), entry.get("text")
                    if isinstance(key, str) and isinstance(text, str):
                        if key in self._entries:
                            stale += 1  # superseded line; compact() would drop it
                        self._entries[key] = text
        if torn or stale:
            # Compaction-worthy anomalies: torn lines mean a writer crashed
            # mid-append, stale lines mean superseded history is bloating the
            # shards.  Surface both in the event log so operators notice.
            emit_event(
                "pcache.anomaly",
                path=str(self.path),
                torn_lines=torn,
                stale_lines=stale,
                live_entries=len(self._entries),
            )

    def _append(self, key: str, text: str) -> None:
        line = json.dumps({"key": key, "text": text}, ensure_ascii=False)
        with open(self._shard_file(key), "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    # ------------------------------------------------------------ cache API
    def get(self, prompt: str) -> str | None:
        with self._lock:
            return self._entries.get(prompt_key(prompt))

    def put(self, prompt: str, text: str) -> None:
        key = prompt_key(prompt)
        with self._lock:
            if self._entries.get(key) == text:
                return  # already durable; skip the duplicate append
            self._entries[key] = text
            self._append(key, text)
            self._m_puts.inc()
            self._m_bytes.inc(len(text))
            self._m_entries.set(len(self._entries))

    # ---------------------------------------------------------- maintenance
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, prompt: str) -> bool:
        return self.get(prompt) is not None

    def clear(self) -> None:
        """Delete all shard files and forget every entry."""
        with self._lock:
            self._entries.clear()
            for shard_path in self.path.glob("shard-*.jsonl"):
                shard_path.unlink()

    def compact(self) -> None:
        """Rewrite shards with one line per live key (drops superseded lines)."""
        with self._lock:
            by_shard: dict[Path, list[tuple[str, str]]] = {}
            for key, text in self._entries.items():
                by_shard.setdefault(self._shard_file(key), []).append((key, text))
            for shard_path in self.path.glob("shard-*.jsonl"):
                shard_path.unlink()
            for shard_path, entries in by_shard.items():
                with open(shard_path, "w", encoding="utf-8") as handle:
                    for key, text in entries:
                        handle.write(
                            json.dumps({"key": key, "text": text}, ensure_ascii=False)
                            + "\n"
                        )
