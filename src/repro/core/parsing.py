"""Context data parsing (Section 4.3).

The retrieved context ``C`` is first losslessly serialized into
``attribute: value`` pairs (``V``) and then — when the component is enabled —
rewritten by the LLM (prompt ``p_dp``) into fluent natural-language text ``C'``
reflecting the logical relations among attributes, which is easier for the LLM
to ground against its training corpus than a table-shaped string.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.base import LanguageModel
from ..prompting.templates import DATA_PARSING
from .config import UniDMConfig
from .plan import LLMRequest, Plan, drive
from .serialization import serialize_records, serialize_rows
from .types import PromptTrace


@dataclass
class ParsedContext:
    """The serialized pairs ``V`` and the (possibly parsed) context text used downstream."""

    serialized: str
    text: str
    was_parsed: bool

    @property
    def is_empty(self) -> bool:
        return not self.text.strip()


class ContextParser:
    """Serializes context rows and optionally rewrites them into fluent text."""

    def __init__(self, llm: LanguageModel, config: UniDMConfig):
        self.llm = llm
        self.config = config

    def parse_records(self, records, attributes, trace: PromptTrace | None = None) -> ParsedContext:
        return drive(self.plan_records(records, attributes, trace), self.llm)

    def parse_rows(self, rows, trace: PromptTrace | None = None) -> ParsedContext:
        return drive(self.plan_rows(rows, trace), self.llm)

    def parse_raw_text(self, text: str, trace: PromptTrace | None = None) -> ParsedContext:
        """Raw document context bypasses serialization and the parsing prompt."""
        return ParsedContext(serialized=text, text=text, was_parsed=False)

    # ------------------------------------------------------------------- plans
    def plan_records(self, records, attributes, trace: PromptTrace | None = None) -> Plan:
        return (yield from self._plan(serialize_records(records, attributes), trace))

    def plan_rows(self, rows, trace: PromptTrace | None = None) -> Plan:
        return (yield from self._plan(serialize_rows(rows), trace))

    def _plan(self, serialized: str, trace: PromptTrace | None) -> Plan:
        if not serialized.strip():
            return ParsedContext(serialized="", text="", was_parsed=False)
        if not self.config.use_context_parsing:
            return ParsedContext(serialized=serialized, text=serialized, was_parsed=False)
        prompt = DATA_PARSING.render(serialized=serialized)
        completion_text = yield LLMRequest(prompt, "p_dp")
        if trace is not None:
            trace.data_parsing = prompt
            trace.data_parsing_output = completion_text
        text = completion_text.strip()
        if not text:
            # A degenerate parse falls back to the lossless serialization.
            return ParsedContext(serialized=serialized, text=serialized, was_parsed=False)
        return ParsedContext(serialized=serialized, text=text, was_parsed=True)
