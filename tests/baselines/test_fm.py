"""Unit tests for the FM prompting baseline."""

import pytest

from repro.baselines import FMMethod
from repro.core import (
    EntityResolutionTask,
    ErrorDetectionTask,
    ImputationTask,
    TableQATask,
    TransformationTask,
)
from repro.llm import EchoLLM, SimulatedLLM


def test_fm_invalid_mode(city_llm):
    with pytest.raises(ValueError):
        FMMethod(city_llm, context_mode="curated")


def test_fm_imputation_prompt_structure(city_table, city_knowledge):
    llm = EchoLLM(reply="Central European Time")
    fm = FMMethod(llm, context_mode="random", n_demonstrations=2, seed=0)
    task = ImputationTask(city_table, city_table[5], "timezone")
    answer = fm.solve(task)
    assert answer == "Central European Time"
    prompt = llm.prompts[-1]
    assert prompt.count("What is the timezone?") == 3  # 2 demos + 1 query
    assert prompt.rstrip().endswith("What is the timezone?")
    # Demonstrations carry their answers inline.
    assert "Central European Time" in prompt or "Greenwich" in prompt


def test_fm_manual_mode_prefers_similar_records(city_table, city_knowledge):
    llm = SimulatedLLM(knowledge=city_knowledge, seed=0)
    fm = FMMethod(llm, context_mode="manual", n_demonstrations=2, seed=0)
    task = ImputationTask(city_table, city_table[5], "timezone")
    assert isinstance(fm.solve(task), str)


def test_fm_error_detection_and_er_and_transformation(city_table, city_llm):
    fm = FMMethod(city_llm, context_mode="manual", seed=0)
    error_task = ErrorDetectionTask(city_table, city_table[0], "country")
    assert fm.solve(error_task) in (True, False)
    er_task = EntityResolutionTask(city_table[0], city_table[1])
    assert fm.solve(er_task) in (True, False)
    transform_task = TransformationTask("19990415", [("20000101", "2000-01-01")])
    assert isinstance(fm.solve(transform_task), str)


def test_fm_rejects_unsupported_tasks(city_table, city_llm):
    fm = FMMethod(city_llm)
    with pytest.raises(TypeError):
        fm.solve(TableQATask(city_table, "a question?"))


def test_fm_uses_er_examples_as_demonstrations(city_table):
    from repro.llm import LabeledPair

    llm = EchoLLM(reply="No")
    fm = FMMethod(
        llm,
        context_mode="manual",
        er_examples=[LabeledPair("a: 1", "a: 2", False), LabeledPair("b: 1", "b: 1", True)],
        n_demonstrations=2,
    )
    fm.solve(EntityResolutionTask(city_table[0], city_table[1]))
    prompt = llm.prompts[-1]
    assert prompt.count("Are Entity A and Entity B the same?") == 3


def test_fm_token_usage_is_modest(city_table, city_knowledge):
    llm = SimulatedLLM(knowledge=city_knowledge, seed=0)
    fm = FMMethod(llm, context_mode="manual", n_demonstrations=3, seed=0)
    fm.solve(ImputationTask(city_table, city_table[5], "timezone"))
    assert llm.usage.calls == 1
    assert llm.usage.total_tokens < 600
