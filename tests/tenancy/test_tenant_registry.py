"""Tenant configuration: validation, resolution, and both serialized forms."""

import json

import pytest

from repro.tenancy import DEFAULT_TENANT, TenantConfig, TenantRegistry


# ---------------------------------------------------------------------- config
def test_config_validation():
    with pytest.raises(ValueError):
        TenantConfig("")
    with pytest.raises(ValueError):
        TenantConfig("t", weight=0.0)
    with pytest.raises(ValueError):
        TenantConfig("t", rate=-1.0)
    with pytest.raises(ValueError):
        TenantConfig("t", burst=0.0)
    with pytest.raises(ValueError):
        TenantConfig("t", max_inflight=0)


def test_config_payload_roundtrip():
    config = TenantConfig("gold", weight=4.0, rate=100.0, burst=20.0, max_inflight=8)
    assert TenantConfig.from_payload("gold", config.to_payload()) == config
    sparse = TenantConfig("sparse")
    assert sparse.to_payload() == {"weight": 1.0}


def test_from_payload_rejects_unknown_keys_and_bad_types():
    with pytest.raises(ValueError, match="unknown config keys"):
        TenantConfig.from_payload("t", {"rate": 5, "quota": 3})
    with pytest.raises(ValueError, match="must be a number"):
        TenantConfig.from_payload("t", {"rate": "fast"})
    with pytest.raises(ValueError, match="must be a number"):
        TenantConfig.from_payload("t", {"burst": True})
    with pytest.raises(ValueError, match="must be an object"):
        TenantConfig.from_payload("t", [1, 2])


def test_parse_inline_full_and_sparse():
    config = TenantConfig.parse_inline("gold,weight=4,rate=100,burst=20,max_inflight=8")
    assert config == TenantConfig(
        "gold", weight=4.0, rate=100.0, burst=20.0, max_inflight=8
    )
    assert TenantConfig.parse_inline("plain") == TenantConfig("plain")


def test_parse_inline_rejects_malformed_specs():
    with pytest.raises(ValueError, match="empty tenant"):
        TenantConfig.parse_inline("  ,")
    with pytest.raises(ValueError, match="knob=value"):
        TenantConfig.parse_inline("t,weight")
    with pytest.raises(ValueError, match="unknown knob"):
        TenantConfig.parse_inline("t,quota=3")
    with pytest.raises(ValueError, match="must be numeric"):
        TenantConfig.parse_inline("t,rate=fast")


# -------------------------------------------------------------------- registry
def test_registry_always_has_a_permissive_default():
    registry = TenantRegistry()
    assert DEFAULT_TENANT in registry
    config = registry.resolve(None)
    assert config.name == DEFAULT_TENANT
    assert config.rate is None and config.max_inflight is None


def test_unknown_empty_and_none_resolve_to_default():
    registry = TenantRegistry([TenantConfig("known", rate=5.0)])
    assert registry.resolve("known").name == "known"
    for claimed in (None, "", "invented-by-an-adversary"):
        assert registry.resolve(claimed).name == DEFAULT_TENANT


def test_register_replaces_and_default_is_configurable():
    registry = TenantRegistry([TenantConfig("t", weight=1.0)])
    registry.register(TenantConfig("t", weight=9.0))
    assert registry.resolve("t").weight == 9.0
    registry.register(TenantConfig(DEFAULT_TENANT, rate=1.0))
    assert registry.resolve("anything").rate == 1.0
    assert len(registry) == 2


def test_registry_payload_roundtrip_and_file_form(tmp_path):
    registry = TenantRegistry(
        [TenantConfig("a", weight=2.0, rate=10.0), TenantConfig("b", max_inflight=3)]
    )
    clone = TenantRegistry.from_payload(registry.to_payload())
    assert clone.to_payload() == registry.to_payload()

    path = tmp_path / "tenants.json"
    path.write_text(json.dumps(registry.to_payload()), encoding="utf-8")
    loaded = TenantRegistry.from_file(path)
    assert loaded.to_payload() == registry.to_payload()


def test_from_file_rejects_bad_json_and_shapes(tmp_path):
    path = tmp_path / "tenants.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ValueError, match="bad JSON"):
        TenantRegistry.from_file(path)
    path.write_text("[1, 2]", encoding="utf-8")
    with pytest.raises(ValueError, match="must be an object"):
        TenantRegistry.from_file(path)
