"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``list-datasets``
    Print the registered benchmark datasets.
``list-experiments``
    Print the experiment modules (one per paper table / figure).
``run-experiment NAME``
    Regenerate one table / figure (e.g. ``table1`` or ``figure5``).  With
    ``--engine`` the experiment's pipeline methods run through the batched
    serving engine instead of a sequential loop.
``demo``
    Run the Figure-2 style quickstart on a freshly generated Restaurant task,
    driven through the :class:`repro.api.Client` facade.  With ``--engine``
    all of the dataset's tasks are executed through the serving engine and a
    throughput summary is printed.
``serve``
    Answer JSON task requests (newline-delimited; blank line flushes a batch)
    on stdin/stdout, or on a TCP socket with ``--port``.  Speaks the
    versioned protocol of :mod:`repro.api.protocol` (v2 envelopes natively,
    flat v1 requests still accepted) and covers all seven task types.
"""

from __future__ import annotations

import argparse
import sys
import time

from .core import UniDMConfig
from .datasets import list_datasets, load_dataset
from .experiments import ALL_EXPERIMENTS
from .llm import CachedLLM, SimulatedLLM


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {number}")
    return number


def _engine_from_args(args: argparse.Namespace):
    from .serving import EngineConfig, ExecutionEngine

    return ExecutionEngine(
        EngineConfig(max_batch_size=args.batch_size, workers=args.workers)
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        action="store_true",
        help="execute through the batched serving engine",
    )
    parser.add_argument("--batch-size", type=_positive_int, default=8, help="micro-batch size")
    parser.add_argument("--workers", type=_positive_int, default=8, help="concurrent tasks in flight")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of a persistent completion cache (created if missing)",
    )


def _maybe_cached(llm, cache_dir: str | None):
    if cache_dir is None:
        return llm
    from .serving import PersistentCache

    return CachedLLM(llm, persistent=PersistentCache(cache_dir))


def _cmd_list_datasets(_: argparse.Namespace) -> int:
    for name in list_datasets():
        print(name)
    return 0


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    for name, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    if args.name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    if args.engine:
        from .eval import set_default_engine
        from .serving import EngineConfig

        print(
            "note: --engine runs cold simulated models concurrently; their "
            "noise streams are call-order-sensitive, so scores may differ "
            "slightly from the sequential reproduction",
            file=sys.stderr,
        )
        set_default_engine(
            EngineConfig(max_batch_size=args.batch_size, workers=args.workers)
        )
    kwargs = {"seed": args.seed}
    if args.max_tasks is not None:
        kwargs["max_tasks"] = args.max_tasks
    try:
        ALL_EXPERIMENTS[args.name].main(**kwargs)
    finally:
        if args.engine:
            set_default_engine(None)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .api import Client

    dataset = load_dataset("restaurant", seed=args.seed, n_records=80, n_tasks=5)
    llm = _maybe_cached(
        SimulatedLLM(knowledge=dataset.knowledge, seed=args.seed), args.cache_dir
    )
    client = Client.local(llm=llm, config=UniDMConfig.full(seed=args.seed))
    task = dataset.tasks[0]
    result = client.run_task(task)
    print("query        :", result.query)
    print("context      :", result.context_text)
    print("target prompt:", result.trace.target_prompt)
    print("answer       :", result.value)
    print("ground truth :", dataset.ground_truth[0])
    print("tokens       :", result.total_tokens)
    if args.engine:
        engine = _engine_from_args(args)
        client.service.engine = engine
        started = time.perf_counter()
        results = client.run_tasks(dataset.tasks)
        elapsed = time.perf_counter() - started
        correct = sum(
            1 for r, truth in zip(results, dataset.ground_truth) if r.value == truth
        )
        stats = engine.last_report.stats
        print(
            f"engine       : {len(results)} tasks in {elapsed:.3f}s "
            f"({len(results) / elapsed:.1f} tasks/s), {correct}/{len(results)} correct"
        )
        if stats is not None:
            print(
                f"batching     : {stats.requests} LLM calls in {stats.batches} "
                f"batches (mean {stats.mean_batch:.2f}, max {stats.max_batch})"
            )
        if args.cache_dir is not None:
            print(f"cache        : hit rate {llm.hit_rate:.2f} ({args.cache_dir})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import build_service

    service = build_service(
        model=args.model,
        seed=args.seed,
        cache_dir=args.cache_dir,
        batch_size=args.batch_size,
        workers=args.workers,
    )
    if args.port is not None:
        import asyncio

        print(f"serving on {args.host}:{args.port}", file=sys.stderr)
        try:
            asyncio.run(service.serve_tcp(args.host, args.port))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        return 0
    served = service.serve_stream(sys.stdin, sys.stdout)
    print(f"served {served} requests", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-datasets").set_defaults(fn=_cmd_list_datasets)
    subparsers.add_parser("list-experiments").set_defaults(fn=_cmd_list_experiments)

    run_parser = subparsers.add_parser("run-experiment")
    run_parser.add_argument("name")
    run_parser.add_argument("--max-tasks", type=int, default=None)
    _add_engine_flags(run_parser)
    run_parser.set_defaults(fn=_cmd_run_experiment)

    demo_parser = subparsers.add_parser("demo")
    _add_engine_flags(demo_parser)
    demo_parser.set_defaults(fn=_cmd_demo)

    serve_parser = subparsers.add_parser("serve")
    serve_parser.add_argument("--model", default=None, help="simulated model profile")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=None, help="TCP port (default: stdin/stdout)")
    serve_parser.add_argument("--batch-size", type=_positive_int, default=8)
    serve_parser.add_argument("--workers", type=_positive_int, default=8)
    serve_parser.add_argument("--cache-dir", default=None)
    serve_parser.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
