"""Awaitable execution of one task through the pipeline's plan stages.

:func:`execute_task` is the async twin of :meth:`repro.core.pipeline.UniDM.run`:
it walks the *same* sans-IO plan generators (see :mod:`repro.core.plan`) the
sync path uses, but satisfies each :class:`~repro.core.plan.LLMRequest` by
awaiting the micro-batcher, so same-kind prompts from concurrent tasks
coalesce into batched LLM calls.

Determinism: the retrieval stage is the only one that draws from the
pipeline's rng, and candidate pools depend on the draw order.  Tasks therefore
pass through an :class:`OrderedGate` so their retrieval plans execute in
submission order — the rng stream (and hence every prompt) is identical to a
sequential ``run_many``, which is what makes a warmed cache bit-reproducible
regardless of concurrency.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Awaitable, Callable

from ..core.plan import LLMRequest, Plan
from ..core.types import ManipulationResult, PromptTrace
from ..llm.base import UsageTracker
from .batcher import MicroBatcher

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import UniDM
    from ..core.tasks.base import Task


async def drive_async(
    plan: Plan, call: Callable[[LLMRequest], Awaitable[str]]
) -> Any:
    """Run a plan to completion, satisfying each request via ``await call(...)``."""
    try:
        request = next(plan)
        while True:
            text = await call(request)
            request = plan.send(text)
    except StopIteration as stop:
        return stop.value


class OrderedGate:
    """Admits task index 0, 1, 2, ... strictly in order.

    The holder runs its critical section (the rng-consuming retrieval stage),
    then releases to admit the next index.  Indices must be acquired by
    exactly the integers 0..n-1.
    """

    def __init__(self) -> None:
        self._next = 0
        self._waiters: dict[int, asyncio.Future] = {}

    async def acquire(self, index: int) -> None:
        if index == self._next:
            return
        future = asyncio.get_running_loop().create_future()
        self._waiters[index] = future
        await future

    def release(self, index: int) -> None:
        if index != self._next:  # defensive: out-of-protocol release
            return
        self._next += 1
        future = self._waiters.pop(self._next, None)
        if future is not None and not future.done():
            future.set_result(None)


async def execute_task(
    pipeline: "UniDM",
    task: "Task",
    index: int,
    batcher: MicroBatcher,
    gate: OrderedGate,
) -> ManipulationResult:
    """Run Algorithm 1 for one task with micro-batched LLM calls.

    Per-task usage is accumulated on a private tracker (the shared tracker of
    ``pipeline.llm`` keeps aggregating inside ``complete_batch``), because
    with interleaved tasks the sequential snapshot/delta trick would attribute
    other tasks' tokens to this query.
    """
    trace = PromptTrace()
    tracker = UsageTracker()

    async def call(request: LLMRequest) -> str:
        completion = await batcher.submit(request.prompt, request.kind)
        tracker.record(completion, kind=request.kind)
        return completion.text

    await gate.acquire(index)
    try:
        pre = await drive_async(pipeline.plan_retrieval(task, trace), call)
    finally:
        gate.release(index)

    context = await drive_async(pipeline.plan_context(pre, trace), call)
    target = await drive_async(pipeline.plan_target(task, context.text, trace), call)
    answer_text = await call(LLMRequest(target.text, "answer"))
    trace.answer = answer_text

    usage = tracker.delta_since((0, 0, 0))
    return pipeline.finish(task, context, answer_text, trace, usage)
