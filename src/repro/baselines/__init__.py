"""Baseline systems the paper compares UniDM against."""

from .base import Baseline
from .cmi import CMIImputer
from .ditto import DittoMatcher, pair_features
from .evaporate import EvaporateCode, EvaporateCodePlus
from .fm import FMMethod
from .holoclean import HoloCleanDetector, HoloCleanImputer
from .holodetect import HoloDetectDetector
from .imp import IMPImputer
from .magellan import MagellanMatcher
from .tde import TDETransformer
from .warpgate import WarpGateJoinDiscovery

__all__ = [
    "Baseline",
    "CMIImputer",
    "DittoMatcher",
    "EvaporateCode",
    "EvaporateCodePlus",
    "FMMethod",
    "HoloCleanDetector",
    "HoloCleanImputer",
    "HoloDetectDetector",
    "IMPImputer",
    "MagellanMatcher",
    "TDETransformer",
    "WarpGateJoinDiscovery",
    "pair_features",
]
