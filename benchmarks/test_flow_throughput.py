"""Benchmark: the flow executor vs the per-row loop it replaces.

The workload mirrors a small lake table with duplicated listings (the same
restaurant scraped three times): a three-stage cleaning pipeline
(detect errors -> impute the missing city -> normalise the phone format)
runs once as the naive per-row loop the old examples hand-wired — one
``run_task`` per compiled work item — and once through
``Pipeline.run``, whose planner deduplicates specs across stages and
partitions before batching them through the engine.

Claim checked (the flow acceptance criterion): the pipeline needs at least
2x fewer LLM calls than the per-row loop on this workload, with the same
output shape.  Results are written to ``BENCH_flow.json`` at the repo root.
"""

import time

from conftest import run_once
from report import write_bench

from repro.api import Client
from repro.core import UniDMConfig
from repro.datalake import Table
from repro.datasets import load_dataset
from repro.flow import DetectErrors, Impute, Pipeline, Transform
from repro.llm import SimulatedLLM

#: Distinct listings; each appears three times in the lake table.
N_BASE_ROWS = 16
DUPLICATION = 3
PARTITION_SIZE = 12

PHONE_EXAMPLES = [["212-555-0199", "(212) 555 0199"], ["415-555-0134", "(415) 555 0134"]]


def _workload():
    """A duplicated, partially-masked restaurant table plus its knowledge."""
    dataset = load_dataset("restaurant", seed=0, n_records=N_BASE_ROWS, n_tasks=8)
    base_rows = dataset.table.to_dicts()  # n_tasks of them have city masked
    rows = [dict(row) for row in base_rows for _ in range(DUPLICATION)]
    return Table.from_dicts("restaurant_lake", rows), dataset.knowledge


def _make_client(knowledge):
    return Client.local(
        llm=SimulatedLLM(knowledge=knowledge, seed=0),
        config=UniDMConfig.full(seed=0),
        batch_size=8,
        workers=8,
    )


def _make_pipeline():
    return Pipeline(
        [
            DetectErrors("phone"),
            Impute("city"),
            Transform("phone", examples=PHONE_EXAMPLES, output_column="intl"),
        ],
        partition_size=PARTITION_SIZE,
    )


def _run_per_row_loop(pipeline, table, client):
    """The hand-wired loop the flow API replaces: one run_task per work item."""
    from repro.flow.executor import _chunks, _segments

    answers = {}
    current = table
    n_items = 0
    for _, size, stages in _segments(pipeline):
        parts = []
        for part in _chunks(current, size):
            for _, operator in stages:
                items = operator.compile(part)
                n_items += len(items)
                results = [
                    (item, client.run_task(item.spec.to_task()).value)
                    for item in items
                ]
                part = operator.apply(part, results, answers)
            parts.append(part)
        if parts:
            current = Table.concat(parts, name=current.name)
    return current, n_items


def test_flow_executor_halves_llm_calls_vs_per_row_loop(benchmark):
    table, knowledge = _workload()
    pipeline = _make_pipeline()

    # Baseline: fresh stack, naive per-row loop.
    loop_client = _make_client(knowledge)
    started = time.perf_counter()
    loop_table, loop_items = _run_per_row_loop(pipeline, table, loop_client)
    loop_elapsed = time.perf_counter() - started
    loop_calls = loop_client.pipeline.llm.usage.calls
    loop_tokens = loop_client.pipeline.llm.usage.total_tokens

    # Flow executor: fresh identical stack, deduplicated + batched.
    flow_client = _make_client(knowledge)
    result = run_once(benchmark, lambda: pipeline.run(table, client=flow_client))
    flow_calls = flow_client.pipeline.llm.usage.calls
    flow_tokens = flow_client.pipeline.llm.usage.total_tokens

    # Same workload, same shape.
    assert len(result.table) == len(loop_table) == len(table)
    assert result.table.schema.names == loop_table.schema.names
    assert result.report.specs == loop_items

    # The acceptance claim: >= 2x fewer LLM calls via dedup + batching.
    assert flow_calls * 2 <= loop_calls, (
        f"flow used {flow_calls} LLM calls vs {loop_calls} for the per-row loop"
    )
    assert result.report.dedup_factor >= 2.0

    payload = {
        "workload": {
            "rows": len(table),
            "distinct_listings": N_BASE_ROWS,
            "duplication": DUPLICATION,
            "partition_size": PARTITION_SIZE,
            "stages": [stage.op for stage in pipeline.stages],
        },
        "per_row_loop": {
            "llm_calls": loop_calls,
            "llm_tokens": loop_tokens,
            "work_items": loop_items,
            "elapsed_s": round(loop_elapsed, 4),
        },
        "flow_executor": {
            "llm_calls": flow_calls,
            "llm_tokens": flow_tokens,
            "specs_compiled": result.report.specs,
            "specs_submitted": result.report.submitted,
            "specs_reused": result.report.reused,
            "dedup_factor": round(result.report.dedup_factor, 3),
            "waves": result.report.waves,
            "elapsed_s": round(result.report.elapsed, 4),
        },
        "llm_call_reduction": round(loop_calls / flow_calls, 3) if flow_calls else None,
    }
    write_bench("flow", payload)
