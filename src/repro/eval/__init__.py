"""Metrics, evaluation harness, ablation driver and report formatting."""

from .flow import (
    changed_cells,
    column_accuracy,
    flow_stage_rows,
    table_cell_accuracy,
)
from .ablation import (
    IMPUTATION_ABLATION_LADDER,
    TRANSFORMATION_ABLATION_LADDER,
    AblationVariant,
    ablation_rows,
    run_ablation,
)
from .harness import (
    EvaluationResult,
    evaluate,
    evaluate_many,
    metric_for,
    set_default_engine,
)
from .metrics import (
    ConfusionMatrix,
    accuracy,
    confusion,
    f1_score,
    mean_text_f1,
    precision,
    recall,
    text_f1,
    values_match,
)
from .reporting import format_markdown_table, format_table, pivot_rows

__all__ = [
    "AblationVariant",
    "ConfusionMatrix",
    "EvaluationResult",
    "IMPUTATION_ABLATION_LADDER",
    "TRANSFORMATION_ABLATION_LADDER",
    "ablation_rows",
    "accuracy",
    "changed_cells",
    "column_accuracy",
    "confusion",
    "evaluate",
    "evaluate_many",
    "flow_stage_rows",
    "set_default_engine",
    "table_cell_accuracy",
    "f1_score",
    "format_markdown_table",
    "format_table",
    "mean_text_f1",
    "metric_for",
    "pivot_rows",
    "precision",
    "recall",
    "run_ablation",
    "text_f1",
    "values_match",
]
