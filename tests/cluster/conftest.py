"""Cluster test fixtures (helpers live in ``cluster_testing.py``).

The helper module carries a unique name on purpose: benchmark tests import
their own ``conftest`` as a plain module, so a second ``from conftest
import ...`` inside ``tests/cluster`` would collide with it in full-suite
runs.  The explicit path insert keeps ``cluster_testing`` importable no
matter which directory pytest imported first.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from cluster_testing import make_mixed_specs


@pytest.fixture
def mixed_specs():
    return make_mixed_specs()
