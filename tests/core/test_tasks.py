"""Unit tests for the task adapters."""

import pytest

from repro.core import (
    EntityResolutionTask,
    ErrorDetectionTask,
    ImputationTask,
    InformationExtractionTask,
    JoinDiscoveryTask,
    TableQATask,
    TaskType,
    TransformationTask,
)
from repro.core.tasks import parse_yes_no, restrict_attributes
from repro.core.tasks.information_extraction import strip_markup


def test_parse_yes_no():
    assert parse_yes_no("Yes")
    assert parse_yes_no("yes, they are the same")
    assert not parse_yes_no("No")
    assert not parse_yes_no("maybe")


def test_restrict_attributes_case_insensitive_dedup():
    assert restrict_attributes(["Country", "country", "bogus"], ["country", "city"]) == ["country"]


def test_imputation_task_query_and_candidates(city_table):
    task = ImputationTask(city_table, city_table[5], "timezone")
    assert task.task_type is TaskType.DATA_IMPUTATION
    assert task.query() == "Copenhagen, timezone"
    assert task.entity_key() == "Copenhagen"
    assert "timezone" not in task.candidate_attributes()
    assert "city" not in task.candidate_attributes()  # the primary key is excluded
    assert task.parse_answer("Central European Time\n") == "Central European Time"
    assert task.needs_retrieval


def test_imputation_task_unknown_attribute(city_table):
    with pytest.raises(KeyError):
        ImputationTask(city_table, city_table[0], "mayor")


def test_transformation_task_context_rows():
    task = TransformationTask("19990415", [("20000101", "2000-01-01")])
    assert not task.needs_retrieval
    assert task.query() == "19990415:?"
    rows = task.context_rows()
    assert rows[0][0] == ("data before transformation", "20000101")
    assert rows[0][1] == ("data after transformation", "2000-01-01")
    with pytest.raises(ValueError):
        TransformationTask("x", [])


def test_error_detection_task(city_table):
    task = ErrorDetectionTask(city_table, city_table[0], "country")
    assert task.query() == "country: Italy?"
    assert task.parse_answer("Yes") is True
    assert task.parse_answer("No") is False
    with pytest.raises(KeyError):
        ErrorDetectionTask(city_table, city_table[0], "nope")


def test_entity_resolution_task(city_table):
    task = EntityResolutionTask(city_table[0], city_table[1], attributes=["city", "country"])
    assert "Entity A is" in task.query() and "Entity B is" in task.query()
    assert not task.needs_retrieval  # no backing table supplied
    with_table = EntityResolutionTask(city_table[0], city_table[1], table=city_table)
    assert with_table.needs_retrieval
    assert task.parse_answer("No") is False


def test_table_qa_task(city_table):
    task = TableQATask(city_table, "which city is in Denmark?")
    assert task.candidate_attributes() == city_table.schema.names
    assert len(task.target_records()) == len(city_table)
    with pytest.raises(ValueError):
        TableQATask(city_table, "   ")


def test_join_discovery_task_context(nextiajd_dataset):
    task = nextiajd_dataset.tasks[0]
    assert isinstance(task, JoinDiscoveryTask)
    assert "VERSUS" in task.query()
    rows = task.context_rows()
    assert rows, "join task should supply context rows"
    contains_rows = [row for row in rows if row[0][0] == "column"]
    assert len(contains_rows) == 2
    assert not task.needs_retrieval


def test_join_discovery_unknown_column(city_table):
    with pytest.raises(KeyError):
        JoinDiscoveryTask(city_table, "nope", city_table, "city")


def test_information_extraction_task():
    doc = "<h1>Kevin Durant</h1><p>Height: 6 ft 10 in</p>"
    task = InformationExtractionTask(doc, "height")
    assert task.query() == "height"
    assert "<h1>" not in task.context_text()
    assert "Kevin Durant" in task.context_text()
    with pytest.raises(ValueError):
        InformationExtractionTask(doc, "  ")


def test_strip_markup_collapses_whitespace():
    assert strip_markup("<p>a</p>\n\n<p>b</p>") == "a b"


def test_task_descriptions_mention_task_names(city_table):
    task = ImputationTask(city_table, city_table[5], "timezone")
    assert "data imputation" in task.description
    assert task.short_name == "data imputation"
