"""Unit tests for the caching LLM wrapper."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.llm import CachedLLM, EchoLLM
from repro.serving import PersistentCache


def test_cache_hits_do_not_invoke_inner_model():
    inner = EchoLLM(reply="pong")
    cached = CachedLLM(inner)
    cached.complete("same prompt")
    cached.complete("same prompt")
    assert inner.usage.calls == 1
    assert cached.usage.calls == 2
    assert cached.hits == 1
    assert cached.misses == 1
    assert cached.hit_rate == pytest.approx(0.5)


def test_cache_eviction_respects_max_entries():
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner, max_entries=2)
    cached.complete("a")
    cached.complete("b")
    cached.complete("c")  # evicts "a"
    cached.complete("a")  # miss again
    assert inner.usage.calls == 4


def test_cache_clear():
    cached = CachedLLM(EchoLLM(reply="x"))
    cached.complete("a")
    cached.clear()
    assert cached.hits == 0 and cached.misses == 0
    cached.complete("a")
    assert cached.misses == 1


def test_cache_validates_max_entries():
    with pytest.raises(ValueError):
        CachedLLM(EchoLLM(), max_entries=0)


def test_cache_name_mentions_inner_model():
    cached = CachedLLM(EchoLLM())
    assert "echo" in cached.name


def test_eviction_is_lru_not_fifo():
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner, max_entries=2)
    cached.complete("a")
    cached.complete("b")
    cached.complete("a")  # refresh "a": "b" is now least recently used
    cached.complete("c")  # evicts "b"
    cached.complete("a")  # still cached
    assert cached.hits == 2
    cached.complete("b")  # evicted: must hit the inner model again
    assert inner.usage.calls == 4  # a, b, c, b


def test_hit_rate_over_mixed_traffic():
    cached = CachedLLM(EchoLLM(reply="x"))
    assert cached.hit_rate == 0.0
    for prompt in ["a", "b", "a", "a", "b", "c"]:
        cached.complete(prompt)
    assert cached.hits == 3 and cached.misses == 3
    assert cached.hit_rate == pytest.approx(0.5)


def test_kind_is_forwarded_to_inner_model():
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner)
    cached.complete("p", kind="p_rm")
    cached.complete("p", kind="p_rm")  # hit: inner untouched
    cached.complete("q", kind="answer")
    assert set(inner.usage.per_prompt_kind) == {"p_rm", "answer"}
    assert set(cached.usage.per_prompt_kind) == {"p_rm", "answer"}
    assert cached.usage.per_prompt_kind["p_rm"] > inner.usage.per_prompt_kind["p_rm"]


def test_complete_batch_deduplicates_within_batch():
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner)
    completions = cached.complete_batch(["a", "b", "a", "a"], kind="p_dp")
    assert [c.prompt for c in completions] == ["a", "b", "a", "a"]
    assert inner.usage.calls == 2  # "a" computed once, "b" once
    # Sequential semantics: first occurrences miss, repeats hit.
    assert cached.misses == 2 and cached.hits == 2
    assert cached.usage.calls == 4
    assert inner.usage.per_prompt_kind == {"p_dp": inner.usage.total_tokens}


def test_complete_batch_larger_than_cache_capacity():
    # A batch whose misses overflow the LRU must still resolve every slot
    # (regression: early entries were read back from the cache after their
    # own batch had evicted them).
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner, max_entries=2)
    completions = cached.complete_batch(["a", "b", "c", "a"], kind="p_dp")
    assert [c.prompt for c in completions] == ["a", "b", "c", "a"]
    assert all(c.text == "x" for c in completions)
    assert inner.usage.calls == 3  # a, b, c computed once each


def test_complete_batch_mixes_cached_and_fresh_prompts():
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner)
    cached.complete("a")
    completions = cached.complete_batch(["a", "b"], kind="answer")
    assert len(completions) == 2
    assert inner.usage.calls == 2
    assert cached.hits == 1 and cached.misses == 2


def test_thread_safety_under_concurrent_completions():
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner)
    prompts = [f"p{i % 10}" for i in range(200)]
    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(cached.complete, prompts))
    # The critical section spans lookup + compute, so each unique prompt hits
    # the inner model exactly once and the counters stay consistent.
    assert inner.usage.calls == 10
    assert cached.misses == 10
    assert cached.hits == 190
    assert cached.usage.calls == 200


def test_persistent_backend_survives_new_wrapper(tmp_path):
    store = PersistentCache(tmp_path / "cache")
    first_inner = EchoLLM(reply="pong")
    first = CachedLLM(first_inner, persistent=store)
    first.complete("hello")
    assert first_inner.usage.calls == 1

    # A fresh wrapper + fresh inner model (as after a process restart) is
    # served entirely from disk.
    second_inner = EchoLLM(reply="pong")
    second = CachedLLM(second_inner, persistent=PersistentCache(tmp_path / "cache"))
    completion = second.complete("hello")
    assert completion.text == "pong"
    assert second_inner.usage.calls == 0
    assert second.hits == 1 and second.persistent_hits == 1


def test_clear_keeps_persistent_store(tmp_path):
    store = PersistentCache(tmp_path / "cache")
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner, persistent=store)
    cached.complete("a")
    cached.clear()
    assert cached.hits == 0 and cached.misses == 0 and cached.persistent_hits == 0
    cached.complete("a")  # memory cleared, but the disk store still has it
    assert inner.usage.calls == 1
    assert cached.persistent_hits == 1
