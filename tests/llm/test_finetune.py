"""Unit tests for simulated fine-tuning."""

import pytest

from repro.llm import FineTuner, LabeledPair, WorldKnowledge
from repro.llm.profiles import get_profile


def make_pairs():
    positives = [
        LabeledPair(f"title: sony camera x{i}, price: 100", f"title: sony camera x{i} black, price: 101", True)
        for i in range(30)
    ]
    negatives = [
        LabeledPair(f"title: sony camera x{i}, price: 100", f"title: garmin gps z{i + 50}, price: 300", False)
        for i in range(30)
    ]
    return positives + negatives


def test_finetuner_requires_pairs():
    with pytest.raises(ValueError):
        FineTuner().fit(get_profile("gpt-j-6b"), [])


def test_finetuner_returns_calibrated_model():
    tuner = FineTuner()
    model, report = tuner.fit(
        get_profile("gpt-j-6b"), make_pairs(), knowledge=WorldKnowledge(), domain="products"
    )
    assert report.n_examples == 60
    assert 0.0 <= report.threshold <= 1.0
    assert report.train_f1 > 0.8
    profile = model.profile
    assert profile.yes_bias == 0.0
    assert profile.calibration_noise < get_profile("gpt-j-6b").calibration_noise
    assert profile.domain_familiarity.get("products") == 1.0
    assert "fine" in profile.display_name.lower()


def test_finetuning_improves_er_decisions():
    pairs = make_pairs()
    raw = get_profile("gpt-j-6b")
    tuned, _ = FineTuner().fit(raw, pairs, knowledge=WorldKnowledge(), domain="products")
    # The tuned profile's decision rule should classify the training pairs far
    # better than the raw profile's default threshold + bias would.
    from repro.llm.answering import entity_match_score

    def f1(threshold, bias):
        tp = fp = fn = 0
        for pair in pairs:
            score = entity_match_score(pair.left, pair.right) + bias
            predicted = score >= threshold
            if predicted and pair.label:
                tp += 1
            elif predicted and not pair.label:
                fp += 1
            elif not predicted and pair.label:
                fn += 1
        if tp == 0:
            return 0.0
        precision, recall = tp / (tp + fp), tp / (tp + fn)
        return 2 * precision * recall / (precision + recall)

    raw_f1 = f1(raw.match_threshold, raw.yes_bias)
    tuned_f1 = f1(tuned.profile.match_threshold, tuned.profile.yes_bias)
    assert tuned_f1 >= raw_f1


def test_finetuner_epoch_validation():
    with pytest.raises(ValueError):
        FineTuner(epochs=0)
