"""Table 6 — UniDM data imputation accuracy across base LLMs.

Runs the full UniDM pipeline on Restaurant and Buy with every model profile in
the registry that the paper evaluates, showing that the pipeline degrades
gracefully on smaller models and improves on stronger ones.
"""

from __future__ import annotations

from ..datasets import load_dataset
from ..eval import evaluate, format_table
from .common import make_unidm

PAPER_RESULTS: dict[str, dict[str, float]] = {
    "gpt-3-175b": {"restaurant": 93.0, "buy": 98.5},
    "gpt-4-turbo": {"restaurant": 96.5, "buy": 98.5},
    "claude2": {"restaurant": 89.5, "buy": 96.9},
    "llama2-7b": {"restaurant": 86.0, "buy": 95.4},
    "llama2-70b": {"restaurant": 88.4, "buy": 96.9},
    "qwen-7b": {"restaurant": 86.0, "buy": 93.8},
}

MODELS = tuple(PAPER_RESULTS)
DATASETS = ("restaurant", "buy")


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    rows: list[dict] = []
    datasets = {name: load_dataset(name, seed=seed) for name in DATASETS}
    for model in MODELS:
        row: dict = {"model": model}
        for dataset_name, dataset in datasets.items():
            method = make_unidm(dataset, model=model, seed=seed + 2)
            result = evaluate(method, dataset, max_tasks=max_tasks)
            row[dataset_name] = result.score_percent
            row[f"{dataset_name}_paper"] = PAPER_RESULTS[model][dataset_name]
        rows.append(row)
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["model", "restaurant", "restaurant_paper", "buy", "buy_paper"],
        title="Table 6 — UniDM imputation accuracy across base LLMs (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
