"""Information extraction task adapter (Appendix E of the paper).

The task builds a structured (tabular) view of semi-structured documents: for
each document and each attribute of a user-defined schema, extract the value.
Context retrieval is not used — the attributes and the document are supplied by
the user — and the document's pre-processed text chunk serves directly as the
context (the paper "temporarily removed the context retrieval module" for this
task).
"""

from __future__ import annotations

import re

from ..types import TaskType
from .base import Task, first_line


def strip_markup(document: str) -> str:
    """Very small HTML/markup stripper used as the pre-processing step."""
    text = re.sub(r"<[^>]+>", " ", document)
    return re.sub(r"\s+", " ", text).strip()


class InformationExtractionTask(Task):
    """Extract the value of ``attribute`` from one semi-structured document."""

    task_type = TaskType.INFORMATION_EXTRACTION

    def __init__(self, document: str, attribute: str, max_chunk_chars: int = 2000):
        if not attribute.strip():
            raise ValueError("attribute must be non-empty")
        self._document = str(document)
        self._attribute = attribute.strip()
        self._max_chunk_chars = max_chunk_chars

    @property
    def attribute(self) -> str:
        return self._attribute

    @property
    def document(self) -> str:
        return self._document

    @property
    def needs_retrieval(self) -> bool:
        return False

    def query(self) -> str:
        return self._attribute

    def target_attributes(self) -> list[str]:
        return [self._attribute]

    def context_text(self) -> str:
        """The pre-processed text chunk of the document."""
        return strip_markup(self._document)[: self._max_chunk_chars]

    def parse_answer(self, text: str) -> str:
        return first_line(text)
