"""Shared fixtures for the client-API tests: one spec of each task type."""

import pytest

from repro.api import (
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ExtractionSpec,
    ImputationSpec,
    JoinDiscoverySpec,
    TableQASpec,
    TransformationSpec,
)


def make_all_seven_specs():
    """One representative, valid spec per registered task type."""
    return [
        TransformationSpec(
            value="19990415",
            examples=[["20000101", "2000-01-01"], ["20101231", "2010-12-31"]],
        ),
        ImputationSpec(
            rows=[
                {"city": "Florence", "country": "Italy"},
                {"city": "Madrid", "country": "Spain"},
            ],
            target={"city": "Milan"},
            attribute="country",
        ),
        ExtractionSpec(document="Kevin Durant plays basketball.", attribute="player"),
        TableQASpec(rows=[{"player": "Jordan", "team": "Bulls"}], question="which team?"),
        EntityResolutionSpec(
            record_a={"name": "iphone 12", "brand": "apple"},
            record_b={"name": "iPhone 12", "brand": "Apple"},
        ),
        ErrorDetectionSpec(
            rows=[{"city": "Rome", "zip": "00100"}, {"city": "Pisa", "zip": "56100"}],
            target={"city": "Rome", "zip": "xx"},
            attribute="zip",
        ),
        JoinDiscoverySpec(
            table_a={"name": "rank", "rows": [{"country_abrv": "GER", "rank": 1}]},
            column_a="country_abrv",
            table_b={"name": "geo", "rows": [{"ISO": "GER", "continent": "Europe"}]},
            column_b="ISO",
        ),
    ]


@pytest.fixture
def all_seven():
    return make_all_seven_specs()
