"""Unit tests for the string transformation operator library."""

import pytest

from repro.transforms import OPERATOR_LIBRARY, OPERATORS_BY_NAME


def op(name):
    return OPERATORS_BY_NAME[name]


def test_library_is_nonempty_and_indexed():
    assert len(OPERATOR_LIBRARY) > 25
    assert set(OPERATORS_BY_NAME) == {o.name for o in OPERATOR_LIBRARY}


@pytest.mark.parametrize(
    "name,value,expected",
    [
        ("compact_date_to_iso", "20210315", "2021-03-15"),
        ("compact_date_to_readable", "20201103", "Nov 03 2020"),
        ("iso_date_to_us", "1999-04-15", "04/15/1999"),
        ("us_date_to_iso", "4/15/1999", "1999-04-15"),
        ("iso_date_to_long", "2020-06-03", "June 3, 2020"),
        ("digits_to_dashed_phone", "3105551234", "310-555-1234"),
        ("digits_to_paren_phone", "3105551234", "(310) 555-1234"),
        ("phone_strip_to_digits", "(310) 555-1234", "3105551234"),
        ("to_upper", "abc", "ABC"),
        ("to_lower", "ABC", "abc"),
        ("to_title", "hello world", "Hello World"),
        ("strip_whitespace", "  x  ", "x"),
        ("collapse_spaces", "a   b", "a b"),
        ("snake_to_camel", "user_name_count", "userNameCount"),
        ("camel_to_snake", "userNameCount", "user_name_count"),
        ("spaces_to_underscores", "a b c", "a_b_c"),
        ("roman_to_arabic", "XIV", "14"),
        ("arabic_to_roman", "14", "XIV"),
        ("add_thousands_separator", "1234567", "1,234,567"),
        ("strip_thousands_separator", "1,234,567", "1234567"),
        ("cents_to_dollars", "199", "$1.99"),
        ("number_to_percent", "0.125", "12.5%"),
        ("extract_domain", "https://www.example.org/page/3", "example.org"),
        ("extract_zipcode", "123 main st Springfield CA 90210", "90210"),
        ("last_name_first", "John Smith", "Smith, John"),
        ("first_name_initial", "John Smith", "J. Smith"),
        ("extract_state_abbrev", "123 main st Springfield CA 90210", "CA"),
        ("ip_to_dotted_padded", "8.8.4.4", "008.008.004.004"),
        ("padded_ip_to_plain", "008.008.004.004", "8.8.4.4"),
        ("extract_file_extension", "report_final.PDF", "pdf"),
        ("extract_year", "released in 1994 remastered", "1994"),
        ("seconds_to_hms", "3725", "01:02:05"),
    ],
)
def test_operator_happy_path(name, value, expected):
    assert op(name)(value) == expected


@pytest.mark.parametrize(
    "name,value",
    [
        ("compact_date_to_iso", "not-a-date"),
        ("compact_date_to_iso", "20211599"),   # invalid month/day
        ("us_date_to_iso", "1999-04-15"),
        ("digits_to_dashed_phone", "12345"),
        ("snake_to_camel", "plain"),
        ("camel_to_snake", "lower"),
        ("spaces_to_underscores", "nospace"),
        ("roman_to_arabic", "ABC"),
        ("arabic_to_roman", "999"),
        ("add_thousands_separator", "12.5"),
        ("strip_thousands_separator", "123"),
        ("number_to_percent", "5"),
        ("extract_domain", "no url here"),
        ("extract_zipcode", "no zip"),
        ("last_name_first", "Cher"),
        ("extract_state_abbrev", "lowercase only"),
        ("ip_to_dotted_padded", "300.1.1.1"),
        ("padded_ip_to_plain", "8.8.4.4"),
        ("extract_file_extension", "no extension"),
        ("extract_year", "year 123"),
        ("seconds_to_hms", "abc"),
    ],
)
def test_operator_rejects_inapplicable_input(name, value):
    assert op(name)(value) is None


def test_operators_never_raise_on_arbitrary_strings():
    weird_inputs = ["", " ", "___", "12,34.56", "a" * 200, "名前", "None"]
    for operator in OPERATOR_LIBRARY:
        for value in weird_inputs:
            operator(value)  # must not raise
