"""Event-log tests: bounded memory, deterministic sampling, concurrency.

Satellite acceptance: the log's ring never exceeds its capacity under
concurrent load, and the head-based sampling verdict is a pure function of
the trace id — the same in every process, so trees never come back
half-sampled.
"""

import json
import threading

import pytest

from repro.obs import EventLog, configure_default_event_log, get_default_event_log
from repro.obs.events import read_events, render_waterfall, sample_decision, trace_ids


# ------------------------------------------------------------------ bounding
def test_ring_is_bounded_and_counts_drops():
    log = EventLog(capacity=8)
    for index in range(20):
        assert log.emit("tick", index=index)
    assert len(log) == 8
    assert log.dropped == 12
    assert [e["index"] for e in log.events()] == list(range(12, 20))


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventLog(capacity=0)
    with pytest.raises(ValueError):
        EventLog(sample_rate=1.5)


def test_bounded_size_under_concurrent_load():
    log = EventLog(capacity=100)
    n_threads, per_thread = 8, 500

    def hammer(tag):
        for index in range(per_thread):
            log.emit("load", tag=tag, index=index)

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(log) == 100
    assert log.dropped == n_threads * per_thread - 100


# ------------------------------------------------------------------ sampling
def test_sample_decision_is_deterministic_and_proportional():
    ids = [f"{i:016x}" for i in range(2000)]
    first = [sample_decision(t, 0.25) for t in ids]
    second = [sample_decision(t, 0.25) for t in ids]
    assert first == second  # pure function of (id, rate)
    kept = sum(first)
    assert 0.15 < kept / len(ids) < 0.35  # roughly the requested rate
    assert all(sample_decision(t, 1.0) for t in ids)
    assert not any(sample_decision(t, 0.0) for t in ids)


def test_emit_respects_sampling_but_keeps_traceless_events():
    log = EventLog(capacity=64, sample_rate=0.0)
    assert not log.emit("span", trace="ab" * 8)
    assert log.emit("worker.death", worker="w0")  # no trace -> always kept
    assert [e["kind"] for e in log.events()] == ["worker.death"]


def test_sampling_verdict_is_identical_across_log_instances():
    # Same rate, different "processes" (instances): identical verdicts, so a
    # distributed trace is either fully present or fully absent.
    ids = [f"{i:016x}" for i in range(500)]
    a = EventLog(capacity=8, sample_rate=0.3)
    b = EventLog(capacity=8, sample_rate=0.3)
    assert [a.sampled(t) for t in ids] == [b.sampled(t) for t in ids]


# ----------------------------------------------------------------- file sink
def test_file_sink_appends_jsonl_and_read_skips_torn_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(capacity=8, path=path)
    log.emit("one", trace="aa" * 8, n=1)
    log.emit("two", n=2)
    log.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "torn-')  # crashed writer's final line
    events = read_events(path)
    assert [e["kind"] for e in events] == ["one", "two"]
    assert json.loads(path.read_text().splitlines()[0])["trace"] == "aa" * 8


def test_default_log_configuration_and_env_export(tmp_path, monkeypatch):
    import os

    monkeypatch.delenv("REPRO_EVENTS_FILE", raising=False)
    monkeypatch.delenv("REPRO_EVENTS_SAMPLE", raising=False)
    path = tmp_path / "sink.jsonl"
    try:
        log = configure_default_event_log(
            capacity=16, path=path, sample_rate=0.5, export_env=True
        )
        assert get_default_event_log() is log
        assert os.environ["REPRO_EVENTS_FILE"] == str(path)
        assert float(os.environ["REPRO_EVENTS_SAMPLE"]) == 0.5
    finally:
        # Plain pops, NOT monkeypatch.delenv: export_env wrote the vars
        # directly, so a delenv here would snapshot those values and
        # *restore* them at teardown, leaking sample_rate=0.5 into every
        # later test (and any subprocess workers they spawn).  The delenvs
        # above already restore the pre-test state at teardown.
        os.environ.pop("REPRO_EVENTS_FILE", None)
        os.environ.pop("REPRO_EVENTS_SAMPLE", None)
        configure_default_event_log(capacity=8192)


# ----------------------------------------------------------------- waterfall
def test_trace_ids_lists_first_seen_order():
    events = [
        {"kind": "span", "trace": "b" * 16},
        {"kind": "span", "trace": "a" * 16},
        {"kind": "span", "trace": "b" * 16},
        {"kind": "worker.death"},
    ]
    assert trace_ids(events) == ["b" * 16, "a" * 16]


def test_render_waterfall_tree_offsets_and_critical_path():
    trace = "ef" * 8
    events = [
        {"kind": "span", "trace": trace, "span": "1-1", "parent": None,
         "name": "root", "start": 10.0, "dur": 0.01, "status": "ok"},
        {"kind": "span", "trace": trace, "span": "1-2", "parent": "1-1",
         "name": "fast", "start": 10.001, "dur": 0.002, "status": "ok",
         "attrs": {"kind": "x"}},
        {"kind": "span", "trace": trace, "span": "1-3", "parent": "1-1",
         "name": "slow", "start": 10.004, "dur": 0.006, "status": "error"},
    ]
    rendered = render_waterfall(events, trace)
    lines = rendered.splitlines()
    assert lines[0].startswith(f"trace {trace} — 3 spans")
    assert "*root" in rendered and "*slow" in rendered  # critical path
    assert "*fast" not in rendered
    assert "kind=x" in rendered
    assert "[ERROR]" in rendered
    # Children are indented beneath the root.
    root_line = next(l for l in lines if "root" in l)
    child_line = next(l for l in lines if "slow" in l)
    assert child_line.index("*slow") > root_line.index("*root")


def test_render_waterfall_handles_unknown_trace_and_orphans():
    assert "no spans recorded" in render_waterfall([], "ab" * 8)
    # A span whose parent was never recorded becomes a root, not a crash.
    trace = "cd" * 8
    rendered = render_waterfall(
        [{"kind": "span", "trace": trace, "span": "1-9", "parent": "gone",
          "name": "orphan", "start": 0.0, "dur": 0.001, "status": "ok"}],
        trace,
    )
    assert "orphan" in rendered


# ------------------------------------------------------------------- rotation
def test_rotation_caps_file_size_and_keeps_history(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(capacity=64, path=path, max_bytes=2000, keep=2)
    for index in range(200):
        log.emit("tick", index=index, pad="x" * 40)
    log.close()

    assert log.rotations > 0
    rotated = sorted(p.name for p in tmp_path.iterdir())
    assert "events.jsonl" in rotated
    assert "events.jsonl.1" in rotated
    # Never more than keep rotated files beside the live one.
    assert len(rotated) <= 3
    # The live file respects the cap (plus at most one overshooting record).
    assert path.stat().st_size <= 2000 + 200
    # Rotated files hold older events than the live one (which may be
    # freshly rotated and still empty).
    live = read_events(path)
    older = read_events(tmp_path / "events.jsonl.1")
    assert older
    if live:
        assert older[-1]["index"] < live[0]["index"]
    # Nothing was lost inside the retained window: indexes stay contiguous.
    retained = [
        event["index"]
        for name in ("events.jsonl.2", "events.jsonl.1", "events.jsonl")
        if (tmp_path / name).exists()
        for event in read_events(tmp_path / name)
    ]
    assert retained == list(range(retained[0], 200))


def test_rotation_keep_zero_truncates(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(capacity=64, path=path, max_bytes=500, keep=0)
    for index in range(100):
        log.emit("tick", index=index, pad="y" * 40)
    log.close()
    assert log.rotations > 0
    assert sorted(p.name for p in tmp_path.iterdir()) == ["events.jsonl"]
    assert path.stat().st_size <= 500 + 100


def test_rotation_validation():
    with pytest.raises(ValueError):
        EventLog(max_bytes=0)
    with pytest.raises(ValueError):
        EventLog(keep=-1)


def test_rotation_config_from_env(tmp_path, monkeypatch):
    from repro.obs.events import (
        ENV_EVENTS_KEEP,
        ENV_EVENTS_MAX_BYTES,
        _log_from_env,
    )

    monkeypatch.setenv("REPRO_EVENTS_FILE", str(tmp_path / "e.jsonl"))
    monkeypatch.setenv(ENV_EVENTS_MAX_BYTES, "1234")
    monkeypatch.setenv(ENV_EVENTS_KEEP, "5")
    log = _log_from_env()
    try:
        assert log.max_bytes == 1234
        assert log.keep == 5
    finally:
        log.close()


def test_configure_default_exports_rotation_env(tmp_path):
    import os

    # Restore the exported vars by hand, NOT via monkeypatch.delenv:
    # deleting a var that the library (not monkeypatch) wrote records the
    # leaked value as the "original", so monkeypatch teardown would put it
    # back — and later tests' subprocess workers then inherit a 4 KiB
    # rotation cap and shred their shared events file.
    exported = (
        "REPRO_EVENTS_FILE",
        "REPRO_EVENTS_SAMPLE",
        "REPRO_EVENTS_MAX_BYTES",
        "REPRO_EVENTS_KEEP",
    )
    saved = {var: os.environ.pop(var, None) for var in exported}
    log = configure_default_event_log(
        path=tmp_path / "e.jsonl", max_bytes=4096, keep=1, export_env=True
    )
    try:
        assert os.environ["REPRO_EVENTS_MAX_BYTES"] == "4096"
        assert os.environ["REPRO_EVENTS_KEEP"] == "1"
    finally:
        log.close()
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
        configure_default_event_log()
