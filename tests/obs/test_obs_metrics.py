"""Tests for the dependency-free metrics core (repro.obs.metrics)."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import LATENCY_BUCKETS, SIZE_BUCKETS, get_default_registry


# -------------------------------------------------------------------- counters
def test_counter_increments_and_rejects_negative():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_is_thread_safe_under_concurrent_increments():
    counter = Counter("c")
    n_threads, per_thread = 8, 2_000

    def spin():
        for _ in range(per_thread):
            counter.inc()

    threads = [threading.Thread(target=spin) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == n_threads * per_thread


# ---------------------------------------------------------------------- gauges
def test_gauge_tracks_value_and_high_water():
    gauge = Gauge("g")
    gauge.inc(3)
    gauge.inc(2)
    gauge.dec(4)
    assert gauge.value == 1
    assert gauge.high_water == 5
    gauge.set(0.5)
    assert gauge.value == 0.5
    assert gauge.high_water == 5  # high water never goes down


# ------------------------------------------------------------------ histograms
def test_histogram_counts_sum_min_max():
    histogram = Histogram("h", bounds=(1, 2, 4))
    for value in (0.5, 1.5, 3.0, 10.0):
        histogram.observe(value)
    payload = histogram.to_payload()
    assert payload["count"] == 4
    assert payload["sum"] == pytest.approx(15.0)
    assert payload["min"] == 0.5
    assert payload["max"] == 10.0
    # One observation per bucket, including the overflow bucket.
    assert payload["buckets"] == {"le_1": 1, "le_2": 1, "le_4": 1, "le_inf": 1}


def test_histogram_percentiles_are_ordered_and_bounded():
    histogram = Histogram("h")  # default latency buckets
    samples = [0.001 * i for i in range(1, 101)]  # 1ms .. 100ms
    for value in samples:
        histogram.observe(value)
    p50, p95, p99 = (histogram.quantile(q) for q in (0.50, 0.95, 0.99))
    assert min(samples) <= p50 <= p95 <= p99 <= max(samples)
    # Bucket interpolation keeps the estimate within one bucket of truth.
    assert p50 == pytest.approx(0.050, abs=0.025)
    assert p99 == pytest.approx(0.099, abs=0.15)


def test_histogram_empty_and_invalid_quantiles():
    histogram = Histogram("h")
    assert histogram.quantile(0.99) == 0.0
    payload = histogram.to_payload()
    assert payload["count"] == 0 and payload["buckets"] == {}
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2, 1))


def test_histogram_overflow_bucket_and_quantiles_beyond_top_bound():
    # Regression: observations past the last bound (default latency buckets
    # top out at 10s) used to vanish from the bucket payload and collapse
    # high quantiles onto the top edge.  They now land in an explicit
    # ``le_inf`` bucket and overflow quantiles answer the observed max.
    histogram = Histogram("h")  # default LATENCY_BUCKETS, top bound 10.0
    for value in (0.5, 11.0, 12.5, 30.0):
        histogram.observe(value)
    payload = histogram.to_payload()
    assert payload["buckets"]["le_inf"] == 3
    assert sum(payload["buckets"].values()) == payload["count"] == 4
    assert histogram.quantile(0.99) == 30.0  # observed max, not the 10s edge
    assert histogram.quantile(0.9) == 30.0
    assert histogram.quantile(0.1) <= 10.0


def test_histogram_single_value_percentiles_do_not_invent_spread():
    histogram = Histogram("h")
    for _ in range(10):
        histogram.observe(0.003)
    # All mass at one point: every percentile is that point, not a bucket edge.
    assert histogram.quantile(0.5) == pytest.approx(0.003)
    assert histogram.quantile(0.99) == pytest.approx(0.003)


# ------------------------------------------------------------------- registry
def test_registry_creates_on_first_use_and_snapshots():
    registry = MetricsRegistry()
    registry.counter("a.b").inc(2)
    registry.gauge("a.g").set(7)
    registry.histogram("a.h", SIZE_BUCKETS).observe(3)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a.b": 2}
    assert snapshot["gauges"]["a.g"]["value"] == 7
    assert snapshot["histograms"]["a.h"]["count"] == 1
    for key in ("p50", "p95", "p99"):
        assert key in snapshot["histograms"]["a.h"]


def test_registry_prefix_filter_and_reset():
    registry = MetricsRegistry()
    requests = registry.counter("batcher.requests")
    requests.inc()
    registry.counter("cache.hits").inc()
    snapshot = registry.snapshot("batcher")
    assert list(snapshot["counters"]) == ["batcher.requests"]
    # Reset zeroes IN PLACE: components cache their metric handles at
    # construction, so the handles must stay registered and live.
    registry.reset()
    assert registry.snapshot()["counters"] == {"batcher.requests": 0, "cache.hits": 0}
    assert registry.counter("batcher.requests") is requests
    requests.inc(3)
    assert registry.snapshot()["counters"]["batcher.requests"] == 3


def test_reset_zeroes_gauges_and_histograms_in_place():
    registry = MetricsRegistry()
    gauge = registry.gauge("engine.inflight")
    gauge.inc(5)
    gauge.dec(2)
    hist = registry.histogram("lat", (1, 2))
    hist.observe(0.5)
    hist.observe(10.0)
    registry.reset()
    assert gauge.value == 0 and gauge.high_water == 0
    payload = hist.to_payload()
    assert payload["count"] == 0 and payload["buckets"] == {}
    assert hist.quantile(0.99) == 0.0
    # Metrics keep working after the reset.
    hist.observe(1.5)
    assert hist.to_payload()["count"] == 1


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_same_name_returns_same_metric_across_threads():
    registry = MetricsRegistry()
    n_threads, per_thread = 8, 500

    def spin():
        for _ in range(per_thread):
            registry.counter("shared").inc()

    threads = [threading.Thread(target=spin) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("shared").value == n_threads * per_thread


def test_default_registry_is_process_wide():
    assert get_default_registry() is get_default_registry()


def test_default_buckets_are_sorted():
    assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
    assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)
