"""Unit tests for the core result / trace types."""

from repro.core.types import TASK_DESCRIPTIONS, ManipulationResult, PromptTrace, TaskType
from repro.llm.base import UsageDelta


def test_every_task_type_has_a_description():
    for task_type in TaskType:
        assert task_type in TASK_DESCRIPTIONS
        assert task_type.value.split()[0] in TASK_DESCRIPTIONS[task_type]


def test_binary_task_flag():
    assert TaskType.ERROR_DETECTION.is_binary
    assert TaskType.ENTITY_RESOLUTION.is_binary
    assert TaskType.JOIN_DISCOVERY.is_binary
    assert not TaskType.DATA_IMPUTATION.is_binary


def test_prompt_trace_as_dict_keys():
    trace = PromptTrace(meta_retrieval="p", answer="a")
    payload = trace.as_dict()
    assert payload["p_rm"] == "p"
    assert payload["answer"] == "a"
    assert set(payload) == {
        "p_rm", "p_rm_output", "p_ri", "p_ri_output", "p_dp", "p_dp_output",
        "p_cq", "p_as", "answer",
    }


def test_manipulation_result_token_total():
    result = ManipulationResult(
        task_type=TaskType.DATA_IMPUTATION,
        raw_answer="x",
        value="x",
        query="q",
        usage=UsageDelta(calls=2, prompt_tokens=10, completion_tokens=5),
    )
    assert result.total_tokens == 15
    assert ManipulationResult(
        task_type=TaskType.DATA_IMPUTATION, raw_answer="x", value="x", query="q"
    ).total_tokens == 0
