"""Request tracing: one id per request, carried in the v2 wire envelope.

A trace id is a 16-hex-char random token.  The client stamps every outgoing
v2 request with one (``"trace"`` envelope key) — either a fresh id per
request, or the id of the active :class:`Trace` context so a whole batch
(or a whole flow-pipeline run) correlates under one id.  The service and the
cluster router echo the id on the response envelope, so any log line or
metric tagged with it can be joined back to the originating call without
shared infrastructure.

Usage::

    from repro.obs import Trace

    with Trace.start() as trace:            # one id for everything inside
        client.submit_many(specs)           # every envelope carries trace.trace_id

    result.trace_id                         # echoed back on each response

The context is a :class:`contextvars.ContextVar`, so it propagates through
``asyncio`` tasks automatically and stays isolated between threads.
"""

from __future__ import annotations

import contextvars
import secrets
from dataclasses import dataclass, field
from typing import Iterator
from contextlib import contextmanager

_current_trace: contextvars.ContextVar["Trace | None"] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def new_trace_id() -> str:
    """A fresh 64-bit random trace id (16 hex chars)."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class Trace:
    """One tracing context: the id plus optional baggage."""

    trace_id: str = field(default_factory=new_trace_id)

    @classmethod
    def current(cls) -> "Trace | None":
        """The active trace context of this thread/task, if any."""
        return _current_trace.get()

    @classmethod
    def current_id(cls) -> str | None:
        """The active trace id, or ``None`` outside any trace context."""
        trace = _current_trace.get()
        return trace.trace_id if trace is not None else None

    @classmethod
    @contextmanager
    def start(cls, trace_id: str | None = None) -> Iterator["Trace"]:
        """Bind a trace context for the ``with`` block (nestable)."""
        trace = cls(trace_id) if trace_id is not None else cls()
        token = _current_trace.set(trace)
        try:
            yield trace
        finally:
            _current_trace.reset(token)

    @contextmanager
    def bind(self) -> Iterator["Trace"]:
        """Re-bind an existing trace (e.g. one parsed off the wire)."""
        token = _current_trace.set(self)
        try:
            yield self
        finally:
            _current_trace.reset(token)


__all__ = ["Trace", "new_trace_id"]
