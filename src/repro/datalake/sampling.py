"""Sampling helpers used by context retrieval and the dataset generators.

Instance-wise retrieval (Section 4.2) first shrinks ``D_i - R`` to a candidate
pool by random sampling before the LLM scores relevance; all randomness is
routed through :class:`numpy.random.Generator` instances so every experiment is
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from .table import Record, Table

T = TypeVar("T")


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or an existing generator) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def sample_items(
    items: Sequence[T],
    k: int,
    rng: np.random.Generator | int | None = None,
    replace: bool = False,
) -> list[T]:
    """Sample ``k`` items (without replacement by default, order randomised)."""
    rng = make_rng(rng)
    if not items:
        return []
    if not replace:
        k = min(k, len(items))
    idx = rng.choice(len(items), size=k, replace=replace)
    return [items[int(i)] for i in np.atleast_1d(idx)]


def sample_records(
    table: Table,
    k: int,
    rng: np.random.Generator | int | None = None,
    exclude_ids: set[int] | None = None,
) -> list[Record]:
    """Sample up to ``k`` records from ``table``, excluding given record ids.

    This is the candidate-pool construction step of instance-wise retrieval:
    the paper samples 50 records from the table before asking the LLM to score
    them (Section 5.1).
    """
    exclude_ids = exclude_ids or set()
    pool = [r for r in table if r.record_id not in exclude_ids]
    return sample_items(pool, k, rng=rng)


def train_test_split_indices(
    n: int,
    test_fraction: float,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_idx, test_idx) for an ``n``-element dataset."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = make_rng(rng)
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    return np.sort(perm[n_test:]), np.sort(perm[:n_test])


def split_table(
    table: Table,
    test_fraction: float,
    rng: np.random.Generator | int | None = None,
) -> tuple[Table, Table]:
    """Split a table into (train, test) tables by record."""
    train_idx, test_idx = train_test_split_indices(len(table), test_fraction, rng)
    train = Table(f"{table.name}_train", table.schema, description=table.description)
    test = Table(f"{table.name}_test", table.schema, description=table.description)
    records = table.records
    for i in train_idx:
        train.append(records[int(i)].copy())
    for i in test_idx:
        test.append(records[int(i)].copy())
    return train, test
