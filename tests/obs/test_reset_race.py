"""Satellite: registry reset racing observers, scrapers and the sampler.

``MetricsRegistry.reset()`` zeroes metrics in place while request threads
keep observing and exporters keep scraping.  Nothing here may crash, no
scrape may see a torn histogram (bucket sum exceeding the total count),
and the rolling time-series must never answer a negative rate or delta
across the reset.
"""

import threading

from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.timeseries import TimeSeriesSampler


def _run_race(work, seconds=0.5, threads=4):
    """Run ``work(stop_event)`` on N threads; surface their exceptions."""
    stop = threading.Event()
    errors = []

    def wrap():
        try:
            work(stop)
        except Exception as exc:  # pragma: no cover - the failure signal
            errors.append(exc)

    workers = [threading.Thread(target=wrap) for _ in range(threads)]
    for worker in workers:
        worker.start()
    timer = threading.Timer(seconds, stop.set)
    timer.start()
    stop.wait(seconds + 5)
    for worker in workers:
        worker.join(10)
    timer.cancel()
    assert not errors, errors


def test_reset_racing_observes_and_scrapes_never_tears():
    registry = MetricsRegistry()
    latency = registry.histogram("latency")
    counter = registry.counter("requests")

    def work(stop):
        while not stop.is_set():
            for _ in range(50):
                latency.observe(0.01)
                counter.inc()
            # Scrape mid-flight: a torn histogram would have bucket counts
            # exceeding the cumulative total.
            counts, total, total_sum = latency.bucket_counts()
            assert sum(1 for c in counts if c < 0) == 0
            assert total >= 0 and total_sum >= -1e-9
            assert counts[-1] <= total  # cumulative-ish sanity: no tearing
            render_prometheus(registry.snapshot())
            registry.reset()

    _run_race(work)


def test_timeseries_rates_stay_nonnegative_across_reset():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    latency = registry.histogram("latency")
    sampler = TimeSeriesSampler(registry, interval=0.001)
    stop = threading.Event()

    def traffic():
        while not stop.is_set():
            counter.inc()
            latency.observe(0.01)

    def resetter():
        while not stop.is_set():
            registry.reset()

    threads = [
        threading.Thread(target=traffic),
        threading.Thread(target=resetter),
    ]
    for thread in threads:
        thread.start()
    try:
        for _ in range(300):
            sampler.sample()
            for window in (0.05, 1.0, 10.0):
                rate = sampler.counter_rate("requests", window)
                assert rate is None or rate >= 0.0
                delta = sampler.counter_delta("requests", window)
                assert delta is None or delta >= 0.0
                stats = sampler.histogram_stats("latency", window)
                if stats is not None:
                    assert stats["count"] >= 0.0
                    assert stats["rate"] >= 0.0
                    assert stats["sum"] >= 0.0
    finally:
        stop.set()
        for thread in threads:
            thread.join(10)


def test_snapshot_payload_stays_json_safe_across_reset():
    import json

    registry = MetricsRegistry()
    counter = registry.counter("requests")
    sampler = TimeSeriesSampler(registry, interval=0.001)

    def work(stop):
        while not stop.is_set():
            counter.inc(10)
            sampler.sample()
            json.dumps(sampler.windows_payload())
            registry.reset()

    _run_race(work, threads=2)
