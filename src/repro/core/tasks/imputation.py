"""Data imputation task adapter.

``S`` contains a single attribute, ``R`` a single record with a missing value
on that attribute; ``F_T`` outputs the missing value (Section 3).  The target
query takes the form "<primary key of R>, <attribute>" (Section 4.2), e.g.
``"Copenhagen, timezone"``.
"""

from __future__ import annotations

from ...datalake.table import Record, Table
from ..types import TaskType
from .base import Task, first_line


class ImputationTask(Task):
    """Impute ``record[attribute]`` using the rest of ``table`` as evidence."""

    task_type = TaskType.DATA_IMPUTATION

    def __init__(self, table: Table, record: Record, attribute: str):
        if attribute not in table.schema:
            raise KeyError(f"attribute {attribute!r} not in table {table.name!r}")
        self._table = table
        self._record = record
        self._attribute = attribute

    # -- unified-framework pieces -------------------------------------------------
    @property
    def record(self) -> Record:
        return self._record

    @property
    def attribute(self) -> str:
        return self._attribute

    def table(self) -> Table:
        return self._table

    def target_records(self) -> list[Record]:
        return [self._record]

    def target_attributes(self) -> list[str]:
        return [self._attribute]

    def entity_key(self) -> str:
        """The primary-key value identifying the target record in prompts."""
        pk = self._table.schema.primary_key()
        if pk is not None:
            return str(self._record[pk.name])
        # Fall back to the first non-target attribute value.
        for name in self._table.schema.names:
            if name != self._attribute:
                return str(self._record[name])
        return str(self._record.values()[0])

    def query(self) -> str:
        return f"{self.entity_key()}, {self._attribute}"

    def candidate_attributes(self) -> list[str]:
        pk = self._table.schema.primary_key()
        exclude = {self._attribute}
        if pk is not None:
            exclude.add(pk.name)
        return [n for n in self._table.schema.names if n not in exclude]

    # -- answer -----------------------------------------------------------------------
    def parse_answer(self, text: str) -> str:
        return first_line(text)
