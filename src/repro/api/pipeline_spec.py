"""The pipeline wire type: a whole dataflow plan as one request.

:class:`PipelineSpec` registers under the wire type ``"pipeline"`` next to
the seven per-task specs, so a declarative :class:`~repro.flow.Pipeline`
plus its input table can travel to the TCP service as a single v2 request::

    {"v": 2, "id": 7, "task": {
        "type": "pipeline",
        "rows": [{"name": "ribeye king", "phone": "212-555-0199", "city": null}, ...],
        "stages": [{"op": "detect_errors", "column": "phone"},
                   {"op": "impute", "column": "city"}],
        "partition_size": 32}}

The service answers with the processed table, the table-level answers and
the execution report (see
:meth:`repro.serving.service.ServingService` — the service runs the full
streaming flow executor next to its engine, so one round trip covers the
whole plan).  Unlike the per-task specs a pipeline is not a single
:class:`~repro.core.tasks.base.Task`; ``to_task()`` therefore refuses, and
the service routes pipeline requests to the plan executor instead.

The flow package is imported lazily: it depends on these spec modules, so a
module-level import would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Sequence

from .errors import InvalidRequestError
from .specs import TaskSpec, _check_table_fields, _require, _table_from_rows, register_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalake.table import Table
    from ..flow.pipeline import Pipeline


@register_spec
@dataclass(frozen=True)
class PipelineSpec(TaskSpec):
    """Run a declarative flow pipeline over an inline table."""

    type: ClassVar[str] = "pipeline"

    rows: Sequence[Mapping[str, Any]]
    stages: Sequence[Mapping[str, Any]]
    table_name: str = "request"
    primary_key: str | None = None
    partition_size: int | None = None
    name: str = "flow"

    def validate(self) -> None:
        from ..flow.operators import FlowError
        from ..flow.pipeline import Pipeline

        names = _check_table_fields(self.rows, self.table_name, self.primary_key)
        _require(
            isinstance(self.stages, Sequence)
            and not isinstance(self.stages, (str, bytes))
            and len(self.stages) > 0,
            "'stages' must be a non-empty list of operator objects",
            "stages",
        )
        _require(
            self.partition_size is None
            or (isinstance(self.partition_size, int) and self.partition_size >= 1),
            "'partition_size' must be a positive integer",
            "partition_size",
        )
        try:
            pipeline = Pipeline.from_payload(
                {
                    "name": self.name,
                    "stages": [dict(stage) for stage in self.stages],
                    "partition_size": self.partition_size,
                }
            )
            pipeline.validate(names)
        except FlowError as exc:
            raise InvalidRequestError(str(exc), field="stages") from None

    # -- materialisation -----------------------------------------------------
    def to_pipeline(self) -> "Pipeline":
        """The validated flow pipeline this spec describes."""
        from ..flow.pipeline import Pipeline

        return Pipeline.from_payload(
            {
                "name": self.name,
                "stages": [dict(stage) for stage in self.stages],
                "partition_size": self.partition_size,
            }
        )

    def to_table(self) -> "Table":
        """The inline input table this spec carries."""
        return _table_from_rows(self.rows, self.table_name, self.primary_key)

    def to_task(self):
        raise InvalidRequestError(
            "a pipeline is a plan of tasks, not a single task; submit it "
            "through a Client (the service routes it to the flow executor)",
            field="type",
        )


__all__ = ["PipelineSpec"]
