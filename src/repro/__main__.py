"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``list-datasets``
    Print the registered benchmark datasets.
``list-experiments``
    Print the experiment modules (one per paper table / figure).
``run-experiment NAME``
    Regenerate one table / figure (e.g. ``table1`` or ``figure5``).  With
    ``--engine`` the experiment's pipeline methods run through the batched
    serving engine instead of a sequential loop.
``demo``
    Run the Figure-2 style quickstart on a freshly generated Restaurant task,
    driven through the :class:`repro.api.Client` facade.  With ``--engine``
    all of the dataset's tasks are executed through the serving engine and a
    throughput summary is printed.  With ``--cluster --workers N`` the
    dataset's tasks fan out as typed specs across a sharded cluster and the
    aggregated :class:`~repro.cluster.ClusterStats` are printed.
``serve``
    Answer JSON task requests (newline-delimited; blank line flushes a batch)
    on stdin/stdout, or on a TCP socket with ``--port``.  Speaks the
    versioned protocol of :mod:`repro.api.protocol` (v2 envelopes natively,
    flat v1 requests still accepted) and covers all seven task types.  With
    ``--cluster``, ``--workers N`` serving stacks shard the work by
    consistent hash with disjoint persistent-cache shards
    (``--cluster-mode process`` spawns them as subprocesses).  With
    ``--max-inflight`` / ``--max-queue-depth`` admission control sheds
    excess load with structured ``overloaded`` errors, and
    ``--stats-port N`` opens a side channel that answers one JSON metrics
    snapshot per connection (readable even under overload).  With
    ``--tenant NAME[,weight=W][,rate=R][,burst=B][,max_inflight=M]``
    (repeatable) and/or ``--tenants-file FILE`` (a JSON object of the same
    per-tenant keys) the front door enforces per-tenant token-bucket rate
    limits and inflight caps (structured ``rate_limited`` errors) and
    schedules admitted work weighted-fair across tenants.
``stats``
    Fetch and pretty-print the observability snapshot of a running service:
    either through the main port (a ``{"type": "stats"}`` request over the
    line protocol) or from a ``--stats-port`` side channel.  With
    ``--format prom`` the snapshot is rendered as Prometheus text-format
    exposition (fetched as ``GET /metrics`` when a ``--stats-port`` is
    given); ``--reset`` zeroes the counters after the snapshot;
    ``--tenant NAME`` narrows it to one tenant (main-port mode only).
    ``--watch SECONDS`` polls and repaints the compact health table (the
    same renderer as ``top``) instead of printing once.
``top``
    Live refreshing per-tenant health table against a running service:
    windowed QPS, p99 latency, shed rate, error-budget headroom and SLO
    state per tenant, plus readiness and firing alerts.  ``--once`` prints
    a single frame (scripting/CI); reads the main port or ``--stats-port``.
``doctor``
    Capture a one-shot diagnostic bundle from a running service's
    ``--stats-port`` (``GET /doctor``): effective config, stats snapshot,
    rolling windows, firing alerts, SLO states, the event tail and every
    thread's stack — one JSON file for a postmortem (``--output -`` for
    stdout).
``trace``
    Reconstruct the span waterfall of one trace from a structured event log
    (``--events`` file, default ``$REPRO_EVENTS_FILE``): per-span offsets,
    durations, tree nesting and the critical path.
"""

from __future__ import annotations

import argparse
import sys
import time

from .core import UniDMConfig
from .datasets import list_datasets, load_dataset
from .experiments import ALL_EXPERIMENTS
from .llm import CachedLLM, SimulatedLLM


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {number}")
    return number


def _engine_from_args(args: argparse.Namespace):
    from .serving import EngineConfig, ExecutionEngine

    return ExecutionEngine(
        EngineConfig(max_batch_size=args.batch_size, workers=args.workers)
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        action="store_true",
        help="execute through the batched serving engine",
    )
    parser.add_argument("--batch-size", type=_positive_int, default=8, help="micro-batch size")
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=8,
        help="concurrent tasks in flight (with --cluster: number of shard workers)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of a persistent completion cache (created if missing)",
    )


def _add_cluster_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="shard across --workers serving stacks (consistent-hash routing, "
        "disjoint cache shards; see repro.cluster)",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="with --cluster: scale the worker count between --min-workers "
        "and --max-workers from the rolling load windows",
    )
    parser.add_argument(
        "--min-workers",
        type=_positive_int,
        default=1,
        help="lower bound of --autoscale (default: 1)",
    )
    parser.add_argument(
        "--max-workers",
        type=_positive_int,
        default=8,
        help="upper bound of --autoscale (default: 8)",
    )
    parser.add_argument(
        "--cluster-mode",
        choices=("thread", "process"),
        default="thread",
        help="cluster worker kind: in-process threads or spawned "
        "`repro serve` subprocesses (default: thread)",
    )


def _maybe_cached(llm, cache_dir: str | None):
    if cache_dir is None:
        return llm
    from .serving import PersistentCache

    return CachedLLM(llm, persistent=PersistentCache(cache_dir))


def _cmd_list_datasets(_: argparse.Namespace) -> int:
    for name in list_datasets():
        print(name)
    return 0


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    for name, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    if args.name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    if args.engine:
        from .eval import set_default_engine
        from .serving import EngineConfig

        print(
            "note: --engine runs cold simulated models concurrently; their "
            "noise streams are call-order-sensitive, so scores may differ "
            "slightly from the sequential reproduction",
            file=sys.stderr,
        )
        set_default_engine(
            EngineConfig(max_batch_size=args.batch_size, workers=args.workers)
        )
    kwargs = {"seed": args.seed}
    if args.max_tasks is not None:
        kwargs["max_tasks"] = args.max_tasks
    try:
        ALL_EXPERIMENTS[args.name].main(**kwargs)
    finally:
        if args.engine:
            set_default_engine(None)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .api import Client

    if args.cluster:
        return _demo_cluster(args)
    dataset = load_dataset("restaurant", seed=args.seed, n_records=80, n_tasks=5)
    llm = _maybe_cached(
        SimulatedLLM(knowledge=dataset.knowledge, seed=args.seed), args.cache_dir
    )
    client = Client.local(llm=llm, config=UniDMConfig.full(seed=args.seed))
    task = dataset.tasks[0]
    result = client.run_task(task)
    print("query        :", result.query)
    print("context      :", result.context_text)
    print("target prompt:", result.trace.target_prompt)
    print("answer       :", result.value)
    print("ground truth :", dataset.ground_truth[0])
    print("tokens       :", result.total_tokens)
    if args.engine:
        engine = _engine_from_args(args)
        client.service.engine = engine
        started = time.perf_counter()
        results = client.run_tasks(dataset.tasks)
        elapsed = time.perf_counter() - started
        correct = sum(
            1 for r, truth in zip(results, dataset.ground_truth) if r.value == truth
        )
        stats = engine.last_report.stats
        print(
            f"engine       : {len(results)} tasks in {elapsed:.3f}s "
            f"({len(results) / elapsed:.1f} tasks/s), {correct}/{len(results)} correct"
        )
        if stats is not None:
            print(
                f"batching     : {stats.requests} LLM calls in {stats.batches} "
                f"batches (mean {stats.mean_batch:.2f}, max {stats.max_batch})"
            )
        if args.cache_dir is not None:
            print(f"cache        : hit rate {llm.hit_rate:.2f} ({args.cache_dir})")
    return 0


def _demo_cluster(args: argparse.Namespace) -> int:
    """Sharded demo: the dataset's imputation tasks fan out as typed specs."""
    from .api import Client, ImputationSpec

    dataset = load_dataset("restaurant", seed=args.seed, n_records=80, n_tasks=16)
    rows = dataset.table.to_dicts()
    specs = [
        ImputationSpec(
            rows=rows,
            target=task.record.to_dict(),
            attribute=task.attribute,
            table_name=dataset.table.name,
        )
        for task in dataset.tasks
    ]
    if args.cluster_mode == "process":
        # Subprocess workers build their own stacks; the dataset's knowledge
        # store cannot ship across the process boundary, so answers come
        # from the bare simulated model.
        print(
            "note: process workers run without the demo's knowledge store; "
            "expect 'unknown' answers (use thread mode for the accuracy demo)",
            file=sys.stderr,
        )
    with Client.cluster(
        workers=args.workers,
        mode=args.cluster_mode,
        seed=args.seed,
        knowledge=dataset.knowledge,
        cache_dir=args.cache_dir,
        batch_size=args.batch_size,
    ) as client:
        started = time.perf_counter()
        results = client.submit_many(specs)
        elapsed = time.perf_counter() - started
        correct = sum(
            1 for r, truth in zip(results, dataset.ground_truth) if r.answer == truth
        )
        print(
            f"cluster      : {len(results)} specs in {elapsed:.3f}s "
            f"({len(results) / elapsed:.1f} specs/s), "
            f"{correct}/{len(results)} correct"
        )
        print(client.router.stats().describe())
    return 0


def _serve_frontend(
    handle_batch,
    served_count,
    args: argparse.Namespace,
    snapshot=None,
    monitor=None,
    doctor_fn=None,
) -> int:
    """Run either front-end (TCP or stdin/stdout) over a batch handler.

    ``snapshot`` (a zero-argument callable returning the stats payload)
    powers the ``--stats-port`` side channel: one JSON snapshot line per
    connection, answered off the main request path.  ``monitor`` (the
    front-end's :class:`~repro.obs.slo.HealthMonitor`) backs the side
    channel's ``/healthz`` + ``/readyz`` probes and ``doctor_fn`` its
    ``/doctor`` bundle.
    """
    from .serving import serve_lines, start_line_server

    stats_port = getattr(args, "stats_port", None)
    if args.port is not None:
        import asyncio

        async def _run() -> None:
            server = await start_line_server(handle_batch, args.host, args.port)
            if stats_port is not None and snapshot is not None:
                from .obs import start_stats_server

                await start_stats_server(
                    snapshot,
                    args.host,
                    stats_port,
                    monitor=monitor,
                    doctor_fn=doctor_fn,
                )
                print(f"stats on {args.host}:{stats_port}", file=sys.stderr)
            async with server:
                await server.serve_forever()

        print(f"serving on {args.host}:{args.port}", file=sys.stderr)
        try:
            asyncio.run(_run())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        except OSError as exc:
            print(f"cannot bind {args.host}: {exc}", file=sys.stderr)
            return 1
        return 0
    if stats_port is not None and snapshot is not None:
        from .obs import serve_stats_in_thread

        bound = serve_stats_in_thread(
            snapshot, args.host, stats_port, monitor=monitor, doctor_fn=doctor_fn
        )
        if bound is None:
            print(
                f"cannot bind stats port {args.host}:{stats_port}", file=sys.stderr
            )
            return 1
        print(f"stats on {args.host}:{bound}", file=sys.stderr)
    served = serve_lines(handle_batch, sys.stdin, sys.stdout)
    print(f"served {served_count() if served_count else served} requests", file=sys.stderr)
    return 0


def _tenants_from_args(args: argparse.Namespace):
    """Build the tenant registry from --tenants-file and --tenant flags.

    Returns ``None`` (tenancy off) when neither flag was given.  Inline
    ``--tenant`` specs override same-named entries from the file.
    """
    inline = getattr(args, "tenants", None) or []
    path = getattr(args, "tenants_file", None)
    if not inline and path is None:
        return None
    from .tenancy import TenantConfig, TenantRegistry

    registry = (
        TenantRegistry.from_file(path) if path is not None else TenantRegistry()
    )
    for spec in inline:
        registry.register(TenantConfig.parse_inline(spec))
    return registry


def _slos_from_args(args: argparse.Namespace) -> list:
    """Build the SLO list from --slos-file and --slo flags.

    Inline ``--slo`` specs override same-named entries from the file.
    """
    inline = getattr(args, "slos", None) or []
    path = getattr(args, "slos_file", None)
    if not inline and path is None:
        return []
    from .obs.slo import SLOSpec, load_slos

    by_name = {}
    if path is not None:
        for spec in load_slos(path):
            by_name[spec.name] = spec
    for text in inline:
        spec = SLOSpec.parse_inline(text)
        by_name[spec.name] = spec
    return list(by_name.values())


def _serve_config(args: argparse.Namespace, slos) -> dict:
    """The effective serve configuration a doctor bundle records."""
    return {
        "command": "serve",
        "model": args.model,
        "seed": args.seed,
        "workers": args.workers,
        "batch_size": args.batch_size,
        "cluster": args.cluster,
        "cluster_mode": args.cluster_mode if args.cluster else None,
        "autoscale": bool(getattr(args, "autoscale", False)),
        "min_workers": getattr(args, "min_workers", None),
        "max_workers": getattr(args, "max_workers", None),
        "max_inflight": args.max_inflight,
        "max_queue_depth": args.max_queue_depth,
        "tenants": getattr(args, "tenants", None) or [],
        "tenants_file": getattr(args, "tenants_file", None),
        "slos": {spec.name: spec.to_payload() for spec in slos},
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        tenants = _tenants_from_args(args)
    except (ValueError, OSError) as exc:
        print(f"bad tenant configuration: {exc}", file=sys.stderr)
        return 2
    try:
        slos = _slos_from_args(args)
    except (ValueError, OSError) as exc:
        print(f"bad SLO configuration: {exc}", file=sys.stderr)
        return 2
    if args.events_file is not None:
        from .obs import configure_default_event_log

        # export_env makes spawned subprocess workers (cluster --cluster-mode
        # process) inherit the sink, so one file collects the whole tree.
        configure_default_event_log(path=args.events_file, export_env=True)

    def doctor_for(snapshot_fn, monitor):
        from .obs.diagnostics import build_bundle

        config = _serve_config(args, slos)
        return lambda: build_bundle(
            snapshot_fn=snapshot_fn, monitor=monitor, config=config
        )

    if args.cluster:
        from .cluster import Router

        if args.cluster_mode == "process":
            router = Router.spawn(
                args.workers,
                seed=args.seed,
                model=args.model,
                cache_dir=args.cache_dir,
                batch_size=args.batch_size,
                max_inflight=args.max_inflight,
                max_queue_depth=args.max_queue_depth,
                tenants=tenants,
                slos=slos,
            )
        else:
            router = Router.local(
                args.workers,
                seed=args.seed,
                model=args.model,
                cache_dir=args.cache_dir,
                batch_size=args.batch_size,
                max_inflight=args.max_inflight,
                max_queue_depth=args.max_queue_depth,
                tenants=tenants,
                slos=slos,
            )
        print(
            f"cluster: {args.workers} {args.cluster_mode} workers", file=sys.stderr
        )
        router.monitor.start()
        # Elasticity control loops: the Supervisor revives crashed workers
        # in place (always on in cluster mode — a crash should never leave
        # a hole in the ring), and --autoscale resizes the worker count
        # between --min-workers/--max-workers from the rolling load windows.
        from .cluster import Supervisor

        supervisor = Supervisor(router)
        supervisor.start()
        autoscaler = None
        if args.autoscale:
            from .cluster import Autoscaler

            try:
                autoscaler = Autoscaler(
                    router,
                    min_workers=args.min_workers,
                    max_workers=args.max_workers,
                )
            except ValueError as exc:
                print(f"bad autoscale configuration: {exc}", file=sys.stderr)
                supervisor.stop()
                router.close()
                return 2
            autoscaler.start()
            print(
                f"autoscale: {args.min_workers}..{args.max_workers} workers",
                file=sys.stderr,
            )
        try:
            return _serve_frontend(
                router.handle_batch,
                lambda: router.requests_served,
                args,
                snapshot=router.stats_snapshot,
                monitor=router.monitor,
                doctor_fn=doctor_for(router.stats_snapshot, router.monitor),
            )
        finally:
            if autoscaler is not None:
                autoscaler.stop()
            supervisor.stop()
            router.close()

    from .serving import build_service

    service = build_service(
        model=args.model,
        seed=args.seed,
        cache_dir=args.cache_dir,
        batch_size=args.batch_size,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_queue_depth=args.max_queue_depth,
        tenants=tenants,
        slos=slos,
    )
    service.monitor.start()
    try:
        return _serve_frontend(
            service.handle_batch,
            lambda: service.requests_served,
            args,
            snapshot=service.stats_snapshot,
            monitor=service.monitor,
            doctor_fn=doctor_for(service.stats_snapshot, service.monitor),
        )
    finally:
        service.monitor.stop()


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .cli import StatsUnreachable, fetch_snapshot, render_top, watch_loop
    from .cli.fetch import fetch_prometheus

    def fetch() -> dict:
        return fetch_snapshot(
            args.host,
            port=args.port,
            stats_port=args.stats_port,
            timeout=args.timeout,
            prefix=args.prefix,
            tenant=args.tenant,
            reset=args.reset,
        )

    try:
        if args.watch is not None:
            return watch_loop(
                fetch,
                render_top,
                interval=args.watch,
                out=sys.stdout,
                err=sys.stderr,
            )
        if args.format == "prom":
            if args.stats_port is not None:
                body = fetch_prometheus(
                    args.host, args.stats_port, timeout=args.timeout
                )
            else:
                from .obs import render_prometheus

                snapshot = fetch()
                body = render_prometheus(
                    snapshot.get("metrics", {}), exemplars=snapshot.get("exemplars")
                )
            print(body, end="")
            return 0
        snapshot = fetch()
    except StatsUnreachable as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(snapshot, indent=2, ensure_ascii=False))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .cli import fetch_snapshot, render_top, watch_loop

    def fetch() -> dict:
        return fetch_snapshot(
            args.host,
            port=args.port,
            stats_port=args.stats_port,
            timeout=args.timeout,
        )

    return watch_loop(
        fetch,
        lambda snapshot: render_top(snapshot, window=args.window),
        interval=args.interval,
        once=args.once,
        out=sys.stdout,
        err=sys.stderr,
    )


def _cmd_doctor(args: argparse.Namespace) -> int:
    import json
    import time

    from .cli import StatsUnreachable, fetch_probe

    if args.stats_port is None:
        print(
            "repro doctor needs --stats-port (start serve with --stats-port N)",
            file=sys.stderr,
        )
        return 2
    try:
        status, bundle = fetch_probe(
            args.host, args.stats_port, "/doctor", timeout=args.timeout
        )
    except StatsUnreachable as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if status != 200:
        print(
            f"stats port {args.host}:{args.stats_port}/doctor answered "
            f"HTTP {status}: {bundle.get('error', bundle)}",
            file=sys.stderr,
        )
        return 1
    # Stamped client-side: the serving process only uses monotonic clocks.
    bundle["captured_at"] = time.time()
    bundle["target"] = f"{args.host}:{args.stats_port}"
    text = json.dumps(bundle, indent=2, ensure_ascii=False)
    if args.output == "-":
        print(text)
        return 0
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"wrote diagnostic bundle to {args.output}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from .obs import get_default_event_log, render_waterfall
    from .obs.events import read_events

    path = args.events or os.environ.get("REPRO_EVENTS_FILE")
    if path:
        try:
            events = read_events(path)
        except OSError as exc:
            print(f"cannot read event log {path}: {exc}", file=sys.stderr)
            return 1
    else:
        # No file sink configured: fall back to this process's in-memory ring
        # (useful from tests and interactive sessions, not across processes).
        events = get_default_event_log().events()
    print(render_waterfall(events, args.trace_id))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-datasets").set_defaults(fn=_cmd_list_datasets)
    subparsers.add_parser("list-experiments").set_defaults(fn=_cmd_list_experiments)

    run_parser = subparsers.add_parser("run-experiment")
    run_parser.add_argument("name")
    run_parser.add_argument("--max-tasks", type=int, default=None)
    _add_engine_flags(run_parser)
    run_parser.set_defaults(fn=_cmd_run_experiment)

    demo_parser = subparsers.add_parser("demo")
    _add_engine_flags(demo_parser)
    _add_cluster_flags(demo_parser)
    demo_parser.set_defaults(fn=_cmd_demo)

    serve_parser = subparsers.add_parser("serve")
    serve_parser.add_argument("--model", default=None, help="simulated model profile")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=None, help="TCP port (default: stdin/stdout)")
    serve_parser.add_argument("--batch-size", type=_positive_int, default=8)
    serve_parser.add_argument("--workers", type=_positive_int, default=8)
    serve_parser.add_argument("--cache-dir", default=None)
    serve_parser.add_argument(
        "--stats-port",
        type=int,
        default=None,
        help="side-channel port answering one JSON metrics snapshot per connection",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        help="admission control: max requests executing at once",
    )
    serve_parser.add_argument(
        "--max-queue-depth",
        type=_positive_int,
        default=None,
        help="admission control: max requests waiting beyond --max-inflight "
        "(excess is shed with an `overloaded` error)",
    )
    serve_parser.add_argument(
        "--events-file",
        default=None,
        help="append structured span/shed/death events to this JSONL file "
        "(subprocess cluster workers inherit it via REPRO_EVENTS_FILE)",
    )
    serve_parser.add_argument(
        "--tenant",
        action="append",
        dest="tenants",
        default=None,
        metavar="NAME[,weight=W][,rate=R][,burst=B][,max_inflight=M]",
        help="register a tenant inline (repeatable); overrides same-named "
        "--tenants-file entries",
    )
    serve_parser.add_argument(
        "--tenants-file",
        default=None,
        help="JSON file of tenant configs: "
        '{"name": {"weight": ..., "rate": ..., "burst": ..., '
        '"max_inflight": ...}, ...}',
    )
    serve_parser.add_argument(
        "--slo",
        action="append",
        dest="slos",
        default=None,
        metavar="NAME[,kind=latency|error_rate][,threshold=S][,percentile=P]"
        "[,budget=F][,burn_rate=X][,severity=page|ticket][,tenant=T]"
        "[,metric=M][,total=M][,windows=10s:1m]",
        help="declare a service-level objective inline (repeatable); "
        "overrides same-named --slos-file entries",
    )
    serve_parser.add_argument(
        "--slos-file",
        default=None,
        help="JSON file of SLO specs: "
        '{"name": {"kind": ..., "threshold": ..., "tenant": ...}, ...}',
    )
    _add_cluster_flags(serve_parser)
    serve_parser.set_defaults(fn=_cmd_serve)

    stats_parser = subparsers.add_parser("stats")
    stats_parser.add_argument("--host", default="127.0.0.1")
    stats_parser.add_argument(
        "--port", type=int, default=8765, help="main serving port (line protocol)"
    )
    stats_parser.add_argument(
        "--stats-port",
        type=int,
        default=None,
        help="read the serve --stats-port side channel instead of the main port",
    )
    stats_parser.add_argument(
        "--prefix", default="", help="restrict metrics to this dotted name prefix"
    )
    stats_parser.add_argument("--timeout", type=float, default=10.0)
    stats_parser.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="output format: pretty JSON or Prometheus text exposition",
    )
    stats_parser.add_argument(
        "--reset",
        action="store_true",
        help="zero the service's metrics after taking the snapshot "
        "(main-port mode only)",
    )
    stats_parser.add_argument(
        "--tenant",
        default=None,
        help="narrow the snapshot to one tenant's metrics and state "
        "(main-port mode only)",
    )
    stats_parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="redraw the repro-top table every SECONDS instead of printing once",
    )
    stats_parser.set_defaults(fn=_cmd_stats)

    top_parser = subparsers.add_parser("top")
    top_parser.add_argument("--host", default="127.0.0.1")
    top_parser.add_argument(
        "--port", type=int, default=8765, help="main serving port (line protocol)"
    )
    top_parser.add_argument(
        "--stats-port",
        type=int,
        default=None,
        help="read the serve --stats-port side channel instead of the main port",
    )
    top_parser.add_argument("--timeout", type=float, default=10.0)
    top_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes",
    )
    top_parser.add_argument(
        "--window",
        default="10s",
        help="rolling window to display (10s, 1m, 5m)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (scripts, CI)",
    )
    top_parser.set_defaults(fn=_cmd_top)

    doctor_parser = subparsers.add_parser("doctor")
    doctor_parser.add_argument("--host", default="127.0.0.1")
    doctor_parser.add_argument(
        "--stats-port",
        type=int,
        default=None,
        help="serve --stats-port side channel to pull the bundle from (required)",
    )
    doctor_parser.add_argument("--timeout", type=float, default=10.0)
    doctor_parser.add_argument(
        "--output",
        default="repro-doctor.json",
        help="bundle destination file, or '-' for stdout",
    )
    doctor_parser.set_defaults(fn=_cmd_doctor)

    trace_parser = subparsers.add_parser("trace")
    trace_parser.add_argument("trace_id", help="trace id to reconstruct")
    trace_parser.add_argument(
        "--events",
        default=None,
        help="event-log JSONL file (default: $REPRO_EVENTS_FILE, else the "
        "in-process ring buffer)",
    )
    trace_parser.set_defaults(fn=_cmd_trace)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
