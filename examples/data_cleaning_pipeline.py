"""Data-cleaning workflow as one declarative flow pipeline.

This mirrors the data-lake motivation of the paper's introduction — a dirty
table arrives and the same unified framework flags suspicious cells, fills in
missing values and normalises formats — but instead of hand-wiring per-row
loops, the whole workload is one :class:`repro.flow.Pipeline`:

    detect errors on "phone"  ->  impute missing "city"  ->  transform
    "phone" into an international format

The planner compiles each stage into batches of typed task specs, fuses
independent stages into shared submission waves, deduplicates repeated
prompts across stages and partitions (lake tables are full of duplicated
listings), and streams everything partition-at-a-time through the batched
serving engine.

Run with::

    python examples/data_cleaning_pipeline.py
"""

from __future__ import annotations

from repro.api import Client
from repro.core import UniDMConfig
from repro.datasets import load_dataset
from repro.eval import column_accuracy, changed_cells, flow_stage_rows, format_table
from repro.datalake import Table
from repro.flow import DetectErrors, Impute, Pipeline, Transform
from repro.llm import SimulatedLLM

#: Normalise phones to bare digits (a pattern the example pairs teach).
PHONE_EXAMPLES = [
    ["212-555-0199", "2125550199"],
    ["415-555-0134", "4155550134"],
]

#: Each listing appears twice in the lake table, as crawled tables tend to.
DUPLICATION = 2


def build_workload():
    """A restaurant table with masked cities, duplicated as lake crawls are."""
    dataset = load_dataset("restaurant", seed=0, n_records=40, n_tasks=12)
    rows = [dict(row) for row in dataset.table.to_dicts() for _ in range(DUPLICATION)]
    table = Table.from_dicts("restaurant_lake", rows)
    # Lake row i is copy i % DUPLICATION of the original row i // DUPLICATION.
    masked = {
        task.record.record_id: value
        for task, value in zip(dataset.tasks, dataset.ground_truth)
    }
    truth = {
        lake_index: masked[lake_index // DUPLICATION]
        for lake_index in range(len(table))
        if lake_index // DUPLICATION in masked
    }
    return table, dataset, truth


def main() -> None:
    table, dataset, truth = build_workload()
    flow = Pipeline(
        [
            DetectErrors("phone"),
            Impute("city"),
            Transform("phone", examples=PHONE_EXAMPLES, output_column="intl"),
        ],
        name="clean-restaurants",
        partition_size=20,
    )
    print(f"{flow!r}")
    print("column lineage:", flow.lineage(table))

    client = Client.local(
        llm=SimulatedLLM(knowledge=dataset.knowledge, seed=0),
        config=UniDMConfig.full(seed=0),
        batch_size=8,
        workers=8,
    )
    with client:
        result = flow.run(table, client=client)

    print()
    print(format_table(flow_stage_rows(result.report), title="Stage metrics"))
    print(
        f"\n{result.report.specs} work items -> {result.report.submitted} submitted "
        f"specs ({result.report.dedup_factor:.1f}x dedup), "
        f"{result.report.waves} waves, {result.report.elapsed:.2f}s"
    )
    print("cells changed:", changed_cells(table, result.table))

    # Score the repairs: compare imputed cities against the masked truth.
    repaired, expected = [], []
    for record in result.table:
        if record.record_id in truth:
            repaired.append({"city": record["city"]})
            expected.append({"city": truth[record.record_id]})
    accuracy = column_accuracy(
        Table.from_dicts("repaired", repaired),
        Table.from_dicts("expected", expected),
        "city",
    )
    print(f"imputation accuracy over {len(repaired)} masked cells: {100 * accuracy:.1f}%")

    sample = [
        {
            "name": record["name"],
            "city": record["city"],
            "flagged_phone": record["phone_error"],
            "digits": record["intl"],
        }
        for record in list(result.table)[:6]
    ]
    print()
    print(format_table(sample, title="Cleaned table (first 6 rows)"))


if __name__ == "__main__":
    main()
