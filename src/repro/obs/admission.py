"""Admission control: bounded pending work, shed the rest, priorities first.

Unbounded queueing turns overload into latency collapse — every request
eventually times out instead of a few failing fast.  The serving service and
the cluster router instead run every JSON batch through an
:class:`AdmissionController`: a hard bound on *pending* requests (executing
plus queued).  A batch that would exceed the bound is rejected immediately
with a structured ``overloaded`` error carrying a retry-after hint, so
clients back off instead of piling on.

Capacity is the sum of the two knobs — ``max_inflight`` (requests the
executor should run at once) and ``max_queue_depth`` (requests allowed to
wait beyond that).  Leaving both ``None`` disables shedding entirely (the
pre-observability behaviour).

:class:`PriorityLock` is the companion dequeue policy: when several batches
are admitted and waiting for the engine, the highest-priority one (v2
envelope key ``"priority"``, higher first; FIFO within a priority) acquires
next — so load shedding never has to drop urgent work to protect itself.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import json
import threading
from typing import Any, Callable, Iterator
from contextlib import contextmanager

from .metrics import MetricsRegistry, get_default_registry


class AdmissionController:
    """Bounds pending requests; sheds the excess instead of queueing it.

    Parameters
    ----------
    max_inflight:
        Requests the executor is expected to run concurrently.
    max_queue_depth:
        Requests allowed to wait beyond ``max_inflight``.
    retry_after:
        Back-off hint (seconds) attached to shed responses.
    name:
        Metric prefix (``<name>.admitted`` / ``<name>.shed`` counters and a
        ``<name>.pending`` gauge).
    """

    def __init__(
        self,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        *,
        retry_after: float = 0.05,
        name: str = "admission",
        metrics: MetricsRegistry | None = None,
    ):
        for label, knob in (
            ("max_inflight", max_inflight),
            ("max_queue_depth", max_queue_depth),
        ):
            if knob is not None and knob < 0:
                raise ValueError(f"{label} must be non-negative")
        if retry_after < 0:
            raise ValueError("retry_after must be non-negative")
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.retry_after = retry_after
        self.name = name
        metrics = metrics or get_default_registry()
        self._m_admitted = metrics.counter(f"{name}.admitted")
        self._m_shed = metrics.counter(f"{name}.shed")
        self._m_pending = metrics.gauge(f"{name}.pending")
        self._pending = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int | None:
        """Total pending requests allowed; ``None`` means unbounded."""
        if self.max_inflight is None and self.max_queue_depth is None:
            return None
        return (self.max_inflight or 0) + (self.max_queue_depth or 0)

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    @property
    def inflight(self) -> int:
        """Pending requests presumed executing (capped at ``max_inflight``)."""
        pending = self.pending
        if self.max_inflight is None:
            return pending
        return min(pending, self.max_inflight)

    @property
    def queued(self) -> int:
        """Pending requests waiting beyond the inflight allowance."""
        pending = self.pending
        if self.max_inflight is None:
            return 0
        return max(0, pending - self.max_inflight)

    # ------------------------------------------------------------ life-cycle
    def try_acquire(self, n: int = 1) -> bool:
        """Reserve capacity for ``n`` requests; False means shed them.

        A batch larger than the whole capacity is still admitted when
        nothing is pending — otherwise it could never run and every retry
        would shed forever.  The bound is on *concurrent* pending work, not
        on single-batch size.
        """
        capacity = self.capacity
        with self._lock:
            if (
                capacity is not None
                and self._pending > 0
                and self._pending + n > capacity
            ):
                self._m_shed.inc(n)
                return False
            self._pending += n
        self._m_admitted.inc(n)
        self._m_pending.inc(n)
        return True

    def release(self, n: int = 1) -> None:
        """Return capacity once the ``n`` admitted requests finished."""
        with self._lock:
            self._pending = max(0, self._pending - n)
        self._m_pending.dec(n)

    @contextmanager
    def admitted(self, n: int = 1) -> Iterator[bool]:
        """``with`` form: yields whether the work was admitted."""
        ok = self.try_acquire(n)
        try:
            yield ok
        finally:
            if ok:
                self.release(n)


class PriorityLock:
    """A mutex whose waiters acquire in (priority desc, arrival asc) order.

    Drop-in stricter replacement for ``threading.Lock`` in code that wants
    urgent batches served first under contention: ``acquire(priority=5)``
    jumps ahead of every waiting ``priority=0`` caller but never preempts the
    current holder.  Also usable as a context manager (priority 0).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._locked = False
        self._waiting: list[tuple[int, int]] = []  # heap of (-priority, seq)
        self._sequence = itertools.count()

    def acquire(self, priority: int = 0) -> None:
        with self._cond:
            ticket = (-priority, next(self._sequence))
            heapq.heappush(self._waiting, ticket)
            while self._locked or self._waiting[0] != ticket:
                self._cond.wait()
            heapq.heappop(self._waiting)
            self._locked = True

    def release(self) -> None:
        with self._cond:
            if not self._locked:
                raise RuntimeError("release of an unheld PriorityLock")
            self._locked = False
            self._cond.notify_all()

    @contextmanager
    def hold(self, priority: int = 0) -> Iterator[None]:
        self.acquire(priority)
        try:
            yield
        finally:
            self.release()

    def __enter__(self) -> "PriorityLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


# --------------------------------------------------------------- stats server
def _http_response(
    status: str, content_type: str, body: str, *, head: bool = False
) -> bytes:
    payload = body.encode("utf-8")
    header = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("ascii")
    return header if head else header + payload


async def start_stats_server(
    snapshot_fn: Callable[[], dict],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    monitor: Any = None,
    doctor_fn: Callable[[], dict] | None = None,
) -> asyncio.AbstractServer:
    """The ``serve --stats-port`` side channel, with content negotiation.

    The endpoint never touches the engine or the batch lock, so stats stay
    readable while the main port is saturated (which is exactly when you
    want them).  Two dialects share the port, sniffed from the first line:

    * **HTTP** (``GET``/``HEAD``) — ``/metrics`` answers the snapshot's
      ``"metrics"`` section in Prometheus text format 0.0.4 (with exemplar
      comments when the snapshot carries an ``"exemplars"`` section);
      ``/healthz`` and ``/readyz`` are liveness/readiness probes backed by
      the service's :class:`~repro.obs.slo.HealthMonitor` (``/readyz``
      answers **503** while not ready — a page-severity alert firing,
      admission saturated, or a cluster worker dead — so a stock HTTP
      health check needs no JSON parsing); ``/doctor`` answers a one-shot
      diagnostic bundle (:mod:`repro.obs.diagnostics`); any other path
      answers the full snapshot as JSON.  ``curl``-able and scrapeable by
      stock Prometheus.
    * **legacy** — a client that connects and just reads (the pre-existing
      ``repro stats --stats-port`` contract) receives one JSON snapshot
      line after a short sniff timeout, exactly as before.
    """

    def json_body(payload: Any) -> str:
        return json.dumps(payload, ensure_ascii=False) + "\n"

    def route(path: str) -> tuple[str, str, str]:
        """``(status, content-type, body)`` for one HTTP path."""
        json_type = "application/json; charset=utf-8"
        if path in ("/metrics", "/metrics/"):
            from .export import render_prometheus

            payload = snapshot_payload()
            body = render_prometheus(
                payload.get("metrics", {}), exemplars=payload.get("exemplars")
            )
            return "200 OK", "text/plain; version=0.0.4; charset=utf-8", body
        if path in ("/healthz", "/healthz/"):
            if monitor is None:
                return "200 OK", json_type, json_body({"status": "ok"})
            return "200 OK", json_type, json_body(monitor.health())
        if path in ("/readyz", "/readyz/"):
            if monitor is None:
                return "200 OK", json_type, json_body({"ready": True})
            ok, detail = monitor.ready()
            status = "200 OK" if ok else "503 Service Unavailable"
            return status, json_type, json_body(detail)
        if path in ("/doctor", "/doctor/"):
            if doctor_fn is not None:
                return "200 OK", json_type, json_body(doctor_fn())
            from .diagnostics import build_bundle

            bundle = build_bundle(snapshot_fn=snapshot_fn, monitor=monitor)
            return "200 OK", json_type, json_body(bundle)
        return "200 OK", json_type, json_body(snapshot_payload())

    def snapshot_payload() -> dict:
        try:
            return snapshot_fn()
        except Exception as exc:  # never kill the endpoint over one snapshot
            return {"error": str(exc)}

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await asyncio.wait_for(reader.readline(), timeout=0.25)
        except (asyncio.TimeoutError, ConnectionError):
            first = b""  # silent client: legacy one-JSON-line dialect
        try:
            request = first.decode("latin-1", "replace").strip()
            parts = request.split()
            if len(parts) >= 2 and parts[0] in ("GET", "HEAD"):
                while True:  # consume request headers up to the blank line
                    try:
                        line = await asyncio.wait_for(reader.readline(), timeout=0.25)
                    except (asyncio.TimeoutError, ConnectionError):
                        break
                    if line in (b"", b"\r\n", b"\n"):
                        break
                head = parts[0] == "HEAD"
                path = parts[1].split("?", 1)[0]
                try:
                    status, content_type, body = route(path)
                except Exception as exc:  # a broken route answers, not drops
                    status = "500 Internal Server Error"
                    content_type = "application/json; charset=utf-8"
                    body = json_body({"error": str(exc)})
                writer.write(_http_response(status, content_type, body, head=head))
            else:
                writer.write(json_body(snapshot_payload()).encode())
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)


def serve_stats_in_thread(
    snapshot_fn: Callable[[], dict],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    monitor: Any = None,
    doctor_fn: Callable[[], dict] | None = None,
) -> int | None:
    """Run :func:`start_stats_server` on a daemon thread; returns the port.

    Used when the main front-end owns the foreground (stdin serving) or its
    own event loop cannot be shared.  Returns ``None`` when the server
    failed to come up within five seconds.
    """
    started = threading.Event()
    bound: dict[str, int] = {}

    def run() -> None:
        async def main() -> None:
            server = await start_stats_server(
                snapshot_fn, host, port, monitor=monitor, doctor_fn=doctor_fn
            )
            sockets = server.sockets or []
            if sockets:
                bound["port"] = sockets[0].getsockname()[1]
            started.set()
            async with server:
                await server.serve_forever()

        try:
            asyncio.run(main())
        except Exception:
            started.set()

    thread = threading.Thread(target=run, daemon=True, name="repro-stats")
    thread.start()
    started.wait(5.0)
    return bound.get("port")


__all__ = [
    "AdmissionController",
    "PriorityLock",
    "serve_stats_in_thread",
    "start_stats_server",
]
