"""Model capability profiles for the simulated LLMs.

The paper evaluates UniDM across several base models (Table 6) and across raw
vs. lightly fine-tuned open-source models (Table 5).  In the reproduction each
model is characterised by a small set of behavioural parameters; the simulated
LLM turns these into answer quality mechanistically (recall of world facts,
fidelity of reading the prompt context, calibration of yes/no decisions, ...).
The relative ordering of the registry follows public benchmark orderings and
the orderings reported in the paper; absolute values are calibration constants
of the reproduction, not claims about the real models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ModelProfile:
    """Behavioural parameters of one (simulated) language model.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"gpt-3-175b"``.
    display_name:
        Name used in report tables, e.g. ``"GPT-3-175B"``.
    parameters_billion:
        Parameter count in billions (reported for context; also scales cost).
    capability:
        General instruction-following / reasoning quality in ``[0, 1]``.
    knowledge_recall:
        Scale on the probability of recalling a world fact of prevalence 1.0.
    context_fidelity:
        Probability of correctly absorbing one context item presented in
        natural language (serialized pairs are read with a penalty).
    calibration_noise:
        Standard deviation of the decision noise added to yes/no judgements
        (entity resolution, error detection, join discovery).
    yes_bias:
        Additive bias on match decisions; raw small models tend to be
        under-confident (negative bias), which is what collapses their F1 in
        Table 5 before fine-tuning.
    domain_familiarity:
        Optional per-domain multipliers on fact prevalence (``{"products": 0.6}``
        makes product facts rarer for this model); fine-tuning raises these.
    task_competence:
        Optional per-task additive competence boosts set by fine-tuning.
    match_threshold:
        Decision threshold on the similarity score for match-style questions.
    cost_per_1k_tokens:
        Nominal price used only for reporting.
    """

    name: str
    display_name: str
    parameters_billion: float
    capability: float
    knowledge_recall: float
    context_fidelity: float
    calibration_noise: float
    yes_bias: float = 0.0
    domain_familiarity: dict[str, float] = field(default_factory=dict)
    task_competence: dict[str, float] = field(default_factory=dict)
    match_threshold: float = 0.50
    cost_per_1k_tokens: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("capability", "knowledge_recall", "context_fidelity"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.calibration_noise < 0:
            raise ValueError("calibration_noise must be non-negative")

    # -- derived accessors -------------------------------------------------------
    def familiarity(self, domain: str) -> float:
        """Prevalence multiplier for a semantic domain (1.0 when unknown)."""
        if not domain:
            return 1.0
        # Allow hierarchical domains: "products.software" falls back to "products".
        if domain in self.domain_familiarity:
            return self.domain_familiarity[domain]
        root = domain.split(".")[0]
        return self.domain_familiarity.get(root, 1.0)

    def competence(self, task: str) -> float:
        return self.task_competence.get(task, 0.0)

    def with_updates(self, **changes) -> "ModelProfile":
        """Return a copy with the given fields replaced (used by fine-tuning)."""
        return replace(self, **changes)


#: Registry of the base models evaluated in the paper (Tables 5 and 6).
MODEL_REGISTRY: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (
        ModelProfile(
            name="gpt-3-175b",
            display_name="GPT-3-175B",
            parameters_billion=175,
            capability=0.88,
            knowledge_recall=0.90,
            context_fidelity=0.93,
            calibration_noise=0.080,
            cost_per_1k_tokens=0.020,
        ),
        ModelProfile(
            name="gpt-4-turbo",
            display_name="GPT-4-Turbo",
            parameters_billion=1000,
            capability=0.96,
            knowledge_recall=0.95,
            context_fidelity=0.97,
            calibration_noise=0.050,
            cost_per_1k_tokens=0.030,
        ),
        ModelProfile(
            name="claude2",
            display_name="Claude2",
            parameters_billion=100,
            capability=0.86,
            knowledge_recall=0.86,
            context_fidelity=0.92,
            calibration_noise=0.090,
            cost_per_1k_tokens=0.011,
        ),
        ModelProfile(
            name="llama2-70b",
            display_name="LLaMA2-70B",
            parameters_billion=70,
            capability=0.84,
            knowledge_recall=0.85,
            context_fidelity=0.90,
            calibration_noise=0.100,
            cost_per_1k_tokens=0.002,
        ),
        ModelProfile(
            name="llama2-7b",
            display_name="LLaMA2-7B",
            parameters_billion=7,
            capability=0.76,
            knowledge_recall=0.82,
            context_fidelity=0.86,
            calibration_noise=0.150,
            yes_bias=-0.10,
            cost_per_1k_tokens=0.0004,
        ),
        ModelProfile(
            name="qwen-7b",
            display_name="Qwen-7B",
            parameters_billion=7,
            capability=0.74,
            knowledge_recall=0.80,
            context_fidelity=0.85,
            calibration_noise=0.160,
            yes_bias=-0.08,
            cost_per_1k_tokens=0.0004,
        ),
        ModelProfile(
            name="gpt-j-6b",
            display_name="GPT-J-6B",
            parameters_billion=6,
            capability=0.45,
            knowledge_recall=0.55,
            context_fidelity=0.70,
            calibration_noise=0.300,
            yes_bias=-0.28,
            cost_per_1k_tokens=0.0003,
        ),
    )
}

#: Default model used throughout the experiments (the paper's default LLM).
DEFAULT_MODEL = "gpt-3-175b"


def get_profile(name: str) -> ModelProfile:
    """Look up a profile by registry key (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        )
    return MODEL_REGISTRY[key]


def list_models() -> list[str]:
    return sorted(MODEL_REGISTRY)
