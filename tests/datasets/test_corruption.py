"""Unit tests for error injection."""

import numpy as np
import pytest

from repro.datasets import corrupt_value, inject_errors
from repro.datasets.corruption import (
    delete_char,
    duplicate_char,
    substitute_char,
    transpose_chars,
)


def test_individual_corruptions_change_value():
    rng = np.random.default_rng(0)
    assert substitute_char("birmingham", rng) != "birmingham"
    assert "x" in substitute_char("birmingham", rng)
    assert len(delete_char("birmingham", rng)) == len("birmingham") - 1
    assert sorted(transpose_chars("ab", rng)) == ["a", "b"]
    assert len(duplicate_char("abc", rng)) > 3


def test_corrupt_value_always_differs():
    rng = np.random.default_rng(1)
    for value in ["a", "ab", "birmingham", "1234"]:
        assert corrupt_value(value, rng) != value


def test_inject_errors_rate_and_ground_truth(city_table):
    rng = np.random.default_rng(0)
    errors = inject_errors(city_table, ["country"], 0.5, rng)
    assert len(errors) == 3  # 50% of 6 non-missing country cells
    for error in errors:
        record = city_table.records[error.record_index]
        assert record["country"] == error.dirty_value
        assert error.dirty_value != error.clean_value


def test_inject_errors_zero_rate(city_table):
    assert inject_errors(city_table, ["country"], 0.0, np.random.default_rng(0)) == []


def test_inject_errors_invalid_rate(city_table):
    with pytest.raises(ValueError):
        inject_errors(city_table, ["country"], 1.5, np.random.default_rng(0))
