"""Token-bucket math under a hand-driven clock (no sleeping, no flakes)."""

import pytest

from repro.tenancy import TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_bucket_starts_full_and_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
    assert bucket.tokens == 5.0
    for _ in range(5):
        assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(0.25)  # 2.5 tokens back
    assert bucket.tokens == pytest.approx(2.5)
    assert bucket.try_acquire(2)
    assert not bucket.try_acquire(1)


def test_refill_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
    clock.advance(60.0)
    assert bucket.tokens == 3.0


def test_burst_defaults_to_rate_floored_at_one():
    assert TokenBucket(rate=50.0).burst == 50.0
    assert TokenBucket(rate=0.2).burst == 1.0


def test_rate_none_is_unlimited():
    bucket = TokenBucket(rate=None)
    for _ in range(10_000):
        assert bucket.try_acquire()
    assert bucket.retry_after() == 0.0


def test_oversized_batch_admitted_only_when_full_and_goes_into_debt():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=4.0, clock=clock)
    # Full bucket: a batch bigger than burst is admitted, at a debt.
    assert bucket.try_acquire(10)
    assert bucket.tokens == pytest.approx(-6.0)
    # While in debt nothing else is affordable.
    assert not bucket.try_acquire(1)
    # A partially-refilled bucket cannot afford another oversized batch.
    clock.advance(0.9)  # 3 of 4 tokens back
    assert not bucket.try_acquire(10)
    clock.advance(0.1)  # full again
    assert bucket.try_acquire(10)


def test_retry_after_is_the_exact_refill_deadline():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=2.0, clock=clock)
    assert bucket.try_acquire(2)
    assert bucket.retry_after(1) == pytest.approx(0.25)
    # Oversized requests only ever need a full bucket, not n tokens.
    assert bucket.retry_after(100) == pytest.approx(0.5)
    clock.advance(0.25)
    assert bucket.retry_after(1) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=5.0, burst=-1.0)
    bucket = TokenBucket(rate=5.0)
    with pytest.raises(ValueError):
        bucket.try_acquire(0)
    with pytest.raises(ValueError):
        bucket.retry_after(-1)
