"""FM baseline (Narayan et al. 2022, "Can foundation models wrangle your data?").

FM solves data wrangling tasks with a *single* prompt per query: the record is
serialized into ``attribute: value`` pairs, a handful of demonstration rows is
prepended (picked **manually** in the original paper, or **randomly** in the
ablated variant the paper also reports), and a short natural-language question
is appended.  There is no automatic context retrieval, no context parsing and
no cloze-prompt construction — precisely the pieces UniDM adds on top.

The baseline runs against the same :class:`~repro.llm.base.LanguageModel` as
UniDM, so accuracy differences come purely from the prompting recipe, and the
token accounting feeds the cost comparison of Table 7.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.serialization import serialize_record
from ..core.tasks.base import Task, first_line, parse_yes_no
from ..core.tasks.entity_resolution import EntityResolutionTask
from ..core.tasks.error_detection import ErrorDetectionTask
from ..core.tasks.imputation import ImputationTask
from ..core.tasks.transformation import TransformationTask
from ..datalake.table import Record, is_missing
from ..datalake.text import string_similarity
from ..llm.base import LanguageModel
from ..llm.finetune import LabeledPair


class FMMethod:
    """Per-task FM baseline over a pluggable LLM.

    Parameters
    ----------
    llm:
        The language model used to answer the prompts.
    context_mode:
        ``"manual"`` picks the demonstration rows most similar to the query
        record (a stand-in for the original paper's hand-curated prompts);
        ``"random"`` samples them uniformly, matching the FM (random) rows of
        Tables 1 and 4.
    n_demonstrations:
        Number of demonstration rows / labelled pairs included in the prompt.
    er_examples:
        Optional labelled pairs available as entity-resolution demonstrations.
    """

    def __init__(
        self,
        llm: LanguageModel,
        context_mode: str = "manual",
        n_demonstrations: int = 3,
        er_examples: Sequence[LabeledPair] = (),
        seed: int = 0,
        name: str | None = None,
    ):
        if context_mode not in ("manual", "random"):
            raise ValueError("context_mode must be 'manual' or 'random'")
        self.llm = llm
        self.context_mode = context_mode
        self.n_demonstrations = n_demonstrations
        self.er_examples = list(er_examples)
        self.rng = np.random.default_rng(seed)
        self.name = name or f"FM ({context_mode})"

    # ------------------------------------------------------------------ dispatch
    def solve(self, task: Task) -> Any:
        if isinstance(task, ImputationTask):
            return self._solve_imputation(task)
        if isinstance(task, ErrorDetectionTask):
            return self._solve_error_detection(task)
        if isinstance(task, EntityResolutionTask):
            return self._solve_entity_resolution(task)
        if isinstance(task, TransformationTask):
            return self._solve_transformation(task)
        raise TypeError(f"FM baseline does not support task type {type(task).__name__}")

    # ---------------------------------------------------------------- imputation
    def _solve_imputation(self, task: ImputationTask) -> str:
        table = task.table()
        attribute = task.attribute
        feature_names = [n for n in table.schema.names if n != attribute]
        # A human curating the prompt picks records that are informative about
        # the *target attribute* (same neighbourhood / product line), so the
        # manual-selection proxy compares records on the non-key evidence
        # attributes rather than on the identifying name.
        pk = table.schema.primary_key()
        evidence_names = [n for n in feature_names if pk is None or n != pk.name] or feature_names
        candidates = [
            r
            for r in table
            if not is_missing(r[attribute]) and r.record_id != task.record.record_id
        ]
        demos = self._pick_demonstrations(
            candidates,
            key=lambda r: string_similarity(
                serialize_record(r, evidence_names),
                serialize_record(task.record, evidence_names),
            ),
        )
        lines = [
            f"{serialize_record(demo, feature_names)}. "
            f"What is the {attribute}? {demo[attribute]}"
            for demo in demos
        ]
        lines.append(
            f"{serialize_record(task.record, feature_names)}. What is the {attribute}?"
        )
        completion = self.llm.complete("\n".join(lines), kind="fm")
        return first_line(completion.text)

    # ------------------------------------------------------------ error detection
    def _solve_error_detection(self, task: ErrorDetectionTask) -> bool:
        prompt = f"Is there an error in {task.attribute}: {task.value}? Yes or No."
        completion = self.llm.complete(prompt, kind="fm")
        return parse_yes_no(completion.text)

    # ----------------------------------------------------------- entity resolution
    def _solve_entity_resolution(self, task: EntityResolutionTask) -> bool:
        target_a, target_b = task.describe_a(), task.describe_b()
        demos = self._pick_demonstrations(
            self.er_examples,
            key=lambda pair: string_similarity(pair.left + " " + pair.right, target_a + " " + target_b),
        )
        lines = [
            f"Entity A is {pair.left}. Entity B is {pair.right}. "
            f"Are Entity A and Entity B the same? {'Yes' if pair.label else 'No'}"
            for pair in demos
        ]
        lines.append(
            f"Entity A is {target_a}. Entity B is {target_b}. "
            "Are Entity A and Entity B the same? Yes or No."
        )
        completion = self.llm.complete("\n".join(lines), kind="fm")
        return parse_yes_no(completion.text)

    # ------------------------------------------------------------- transformation
    def _solve_transformation(self, task: TransformationTask) -> str:
        lines = [f"{src} to {dst}" for src, dst in task.examples]
        lines.append(f"{task.source} to")
        completion = self.llm.complete("\n".join(lines), kind="fm")
        return first_line(completion.text)

    # ------------------------------------------------------------------- helpers
    def _pick_demonstrations(self, candidates: Sequence[Any], key) -> list[Any]:
        if not candidates or self.n_demonstrations <= 0:
            return []
        k = min(self.n_demonstrations, len(candidates))
        if self.context_mode == "random":
            indices = self.rng.choice(len(candidates), size=k, replace=False)
            return [candidates[int(i)] for i in np.atleast_1d(indices)]
        scored = sorted(candidates, key=key, reverse=True)
        return list(scored[:k])


def demonstrations_from_records(records: Sequence[Record]) -> list[str]:
    """Utility: serialized demonstration strings (used in docs and tests)."""
    return [serialize_record(record) for record in records]
