"""Table 4 — entity resolution F1 on the Magellan benchmark datasets.

Compares Magellan, Ditto, FM (random / manual demonstrations) and UniDM on
Beer, Amazon-Google, iTunes-Amazon and Walmart-Amazon.
"""

from __future__ import annotations

from ..baselines import DittoMatcher, MagellanMatcher
from ..datasets import load_dataset
from ..eval import evaluate, format_table
from .common import make_fm, make_unidm, result_row

PAPER_RESULTS: dict[str, dict[str, float]] = {
    "beer": {
        "Magellan": 78.8, "Ditto": 94.4, "FM (random)": 92.3,
        "FM (manual)": 100.0, "UniDM": 96.3,
    },
    "amazon_google": {
        "Magellan": 49.1, "Ditto": 75.6, "FM (random)": 60.7,
        "FM (manual)": 63.5, "UniDM": 64.3,
    },
    "itunes_amazon": {
        "Magellan": 91.2, "Ditto": 97.1, "FM (random)": 96.3,
        "FM (manual)": 98.2, "UniDM": 96.3,
    },
    "walmart_amazon": {
        "Magellan": 71.9, "Ditto": 86.8, "FM (random)": 73.8,
        "FM (manual)": 87.0, "UniDM": 88.2,
    },
}

DATASETS = ("beer", "amazon_google", "itunes_amazon", "walmart_amazon")


def methods_for(dataset, seed: int):
    return [
        ("Magellan", MagellanMatcher(seed=seed)),
        ("Ditto", DittoMatcher(seed=seed)),
        ("FM (random)", make_fm(dataset, "random", seed=seed + 1)),
        ("FM (manual)", make_fm(dataset, "manual", seed=seed + 1)),
        ("UniDM", make_unidm(dataset, seed=seed + 2)),
    ]


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    rows: list[dict] = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=seed)
        for method_name, method in methods_for(dataset, seed):
            result = evaluate(method, dataset, max_tasks=max_tasks)
            rows.append(
                result_row(
                    result,
                    method=method_name,
                    paper=PAPER_RESULTS[dataset_name].get(method_name, float("nan")),
                )
            )
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["dataset", "method", "score", "paper"],
        title="Table 4 — Entity resolution F1 (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
