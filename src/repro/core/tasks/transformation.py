"""Data transformation task adapter.

The task converts a value from one format to another, guided by user-provided
input/output examples (the TDE benchmark setting).  Context retrieval does not
apply (Section 5.3 notes the ablation omits it); instead the examples
themselves form the context rows handed to the parsing / prompting steps.
"""

from __future__ import annotations

from typing import Sequence

from ..types import TaskType
from .base import Task, first_line

#: Attribute labels used when serializing example pairs; the knowledge store
#: registers a sentence template for ``TRANSFORMED_ATTR`` ("X can be
#: transformed to Y") so that context parsing produces fluent example text.
SOURCE_ATTR = "data before transformation"
TRANSFORMED_ATTR = "data after transformation"


class TransformationTask(Task):
    """Transform ``source`` following the pattern shown by ``examples``."""

    task_type = TaskType.DATA_TRANSFORMATION

    def __init__(
        self,
        source: str,
        examples: Sequence[tuple[str, str]],
        name: str = "",
    ):
        if not examples:
            raise ValueError("a transformation task needs at least one example pair")
        self._source = str(source)
        self._examples = [(str(a), str(b)) for a, b in examples]
        self._name = name

    @property
    def source(self) -> str:
        return self._source

    @property
    def examples(self) -> list[tuple[str, str]]:
        return list(self._examples)

    @property
    def needs_retrieval(self) -> bool:
        return False

    def query(self) -> str:
        # Section 4.5: Q is directly the attribute value to transform; the
        # paper writes it as "19990415:?".
        return f"{self._source}:?"

    def context_rows(self) -> list[list[tuple[str, str]]]:
        return [
            [(SOURCE_ATTR, src), (TRANSFORMED_ATTR, dst)]
            for src, dst in self._examples
        ]

    def parse_answer(self, text: str) -> str:
        return first_line(text)
