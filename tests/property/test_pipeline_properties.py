"""Property-based tests on pipeline-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ImputationTask, UniDM, UniDMConfig
from repro.llm import SimulatedLLM

from tests.conftest import build_city_knowledge, build_city_table


@given(
    seed=st.integers(min_value=0, max_value=50),
    use_parsing=st.booleans(),
    use_cloze=st.booleans(),
    top_k=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_pipeline_always_returns_a_value_and_tracks_usage(seed, use_parsing, use_cloze, top_k):
    table = build_city_table()
    knowledge = build_city_knowledge()
    llm = SimulatedLLM(knowledge=knowledge, seed=seed)
    config = UniDMConfig(
        use_context_parsing=use_parsing,
        use_cloze_prompt=use_cloze,
        top_k_instances=top_k,
        candidate_sample_size=max(top_k, 4),
        seed=seed,
    )
    pipeline = UniDM(llm, config)
    result = pipeline.run(ImputationTask(table, table[5], "timezone"))
    assert isinstance(result.value, str) and result.value
    assert result.usage.calls >= 1
    assert result.usage.total_tokens > 0
    # The answer prompt is always the last traced prompt.
    assert result.trace.target_prompt is not None


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_same_seed_same_answers(seed):
    table = build_city_table()
    knowledge = build_city_knowledge()

    def run_once():
        llm = SimulatedLLM(knowledge=knowledge, seed=seed)
        pipeline = UniDM(llm, UniDMConfig.full(seed=seed, candidate_sample_size=4, top_k_instances=2))
        return pipeline.run(ImputationTask(table, table[5], "timezone")).value

    assert run_once() == run_once()
