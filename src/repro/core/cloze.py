"""Target prompt construction (Section 4.4).

Every task describable by the unified framework can be rewritten as a cloze
question.  The builder assembles the claim (task description ``T``, parsed
context ``C'``, target query ``Q``), embeds it in the few-shot prompt ``p_cq``
together with the demonstration bank of Appendix A, and asks the LLM to emit
the cloze question ``p_as`` that is then used as the final answer prompt.

When the component is disabled (ablation rows of Tables 8-10) the claim is
concatenated directly into a naive answer prompt instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.base import LanguageModel
from ..prompting.templates import (
    CLOZE_CONSTRUCTION,
    DIRECT_ANSWER,
    render_demonstrations,
)
from .config import UniDMConfig
from .plan import LLMRequest, Plan, drive
from .tasks.base import Task
from .types import PromptTrace


@dataclass
class TargetPrompt:
    """The final answer prompt and how it was produced."""

    text: str
    is_cloze: bool


class TargetPromptBuilder:
    """Builds the final answer prompt for a task instance."""

    def __init__(self, llm: LanguageModel, config: UniDMConfig):
        self.llm = llm
        self.config = config

    def build(
        self,
        task: Task,
        context_text: str,
        trace: PromptTrace | None = None,
    ) -> TargetPrompt:
        return drive(self.plan(task, context_text, trace), self.llm)

    def plan(
        self,
        task: Task,
        context_text: str,
        trace: PromptTrace | None = None,
    ) -> Plan:
        if not self.config.use_cloze_prompt:
            prompt = DIRECT_ANSWER.render(
                task=task.short_name,
                context=context_text,
                query=task.query(),
            )
            if trace is not None:
                trace.target_prompt = prompt
            return TargetPrompt(text=prompt, is_cloze=False)

        construction_prompt = CLOZE_CONSTRUCTION.render(
            demonstrations=render_demonstrations(),
            task_description=task.description,
            context=context_text,
            query=task.query(),
        )
        completion_text = yield LLMRequest(construction_prompt, "p_cq")
        cloze = completion_text.strip()
        if trace is not None:
            trace.cloze_construction = construction_prompt
            trace.target_prompt = cloze
        if not cloze:
            # Fall back to the direct prompt if the LLM returned nothing.
            fallback = DIRECT_ANSWER.render(
                task=task.short_name, context=context_text, query=task.query()
            )
            return TargetPrompt(text=fallback, is_cloze=False)
        return TargetPrompt(text=cloze, is_cloze=True)
