"""Prometheus/OpenMetrics text rendering of a metrics snapshot.

The renderer works from the *JSON snapshot* (``MetricsRegistry.snapshot()``
shape), not from live metric objects, so the same code path serves both the
in-process registry and a snapshot fetched from a remote serving process
over the stats port.  Output follows the Prometheus text format 0.0.4 as
emitted by the reference client library:

* counters are exposed as ``<name>_total``;
* gauges are exposed twice — current value and ``<name>_high_water``;
* histograms become cumulative ``_bucket{le="..."}`` series (rebuilt from
  the snapshot's sparse per-bucket counts) plus ``le="+Inf"``, ``_sum``
  and ``_count``.

Exemplars — the most recent trace id observed per metric name — are
rendered as plain ``#`` comment lines: every text-format parser skips
unknown comments, so the exposition stays parseable by strict tooling
while humans (and ``repro trace``) can still jump from a latency series
straight to a representative waterfall.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Mapping

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Prefix stamped on every exported metric family.
DEFAULT_PREFIX = "repro_"


def _sanitize(name: str, prefix: str) -> str:
    """Map a dotted registry name onto a legal Prometheus metric name."""
    flat = _NAME_RE.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return prefix + flat


def _fmt(value: float) -> str:
    """Render a sample value the way the reference client does."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _bucket_bound(key: str) -> float:
    """Parse a snapshot bucket key (``le_0.005`` / ``le_inf``) to its bound."""
    raw = key[3:] if key.startswith("le_") else key
    if raw == "inf":
        return float("inf")
    return float(raw)


class ExemplarStore:
    """Latest trace id seen per metric name (thread-safe, bounded by names)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, str] = {}

    def note(self, name: str, trace_id: str | None) -> None:
        if trace_id is None:
            return
        with self._lock:
            self._by_name[name] = trace_id

    def snapshot(self) -> dict[str, str]:
        with self._lock:
            return dict(self._by_name)

    def clear(self) -> None:
        with self._lock:
            self._by_name.clear()


_default_exemplars = ExemplarStore()


def get_default_exemplars() -> ExemplarStore:
    """The process-wide exemplar store fed by instrumented hot paths."""
    return _default_exemplars


def render_prometheus(
    snapshot: Mapping[str, Any],
    *,
    exemplars: Mapping[str, str] | None = None,
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """Render a ``MetricsRegistry.snapshot()``-shaped mapping as text 0.0.4.

    ``exemplars`` maps registry metric names to trace ids; matching entries
    are emitted as comment lines next to their family.
    """
    exemplars = exemplars or {}
    lines: list[str] = []

    def _exemplar(name: str) -> None:
        trace = exemplars.get(name)
        if trace:
            lines.append(f'# exemplar {_sanitize(name, prefix)} trace_id="{trace}"')

    for name, value in sorted(dict(snapshot.get("counters", {})).items()):
        flat = _sanitize(name, prefix)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat}_total {_fmt(float(value))}")
        _exemplar(name)

    for name, payload in sorted(dict(snapshot.get("gauges", {})).items()):
        flat = _sanitize(name, prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_fmt(float(payload['value']))}")
        lines.append(f"# TYPE {flat}_high_water gauge")
        lines.append(f"{flat}_high_water {_fmt(float(payload['high_water']))}")
        _exemplar(name)

    for name, payload in sorted(dict(snapshot.get("histograms", {})).items()):
        flat = _sanitize(name, prefix)
        count = int(payload.get("count", 0))
        lines.append(f"# TYPE {flat} histogram")
        buckets = {
            _bucket_bound(key): int(n)
            for key, n in dict(payload.get("buckets", {})).items()
        }
        cumulative = 0
        for bound in sorted(b for b in buckets if b != float("inf")):
            cumulative += buckets[bound]
            lines.append(f'{flat}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{flat}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{flat}_sum {_fmt(float(payload.get('sum', 0.0)))}")
        lines.append(f"{flat}_count {count}")
        _exemplar(name)

    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_PREFIX",
    "ExemplarStore",
    "get_default_exemplars",
    "render_prometheus",
]
