"""SLO engine tests: spec parsing, burn-rate evaluation, alert lifecycle.

Tentpole acceptance: declarative objectives evaluate against the rolling
time-series with the multi-window rule (every window must breach at once),
transitions emit ``slo.breach``/``slo.recovered`` exactly once per flip,
and tenant-scoped specs default their metrics to the tenant's prefix.
"""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import SLOEngine, SLOSpec, load_slos
from repro.obs.timeseries import TimeSeriesSampler


class FakeClock:
    def __init__(self, now=500.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_engine(specs, *, registry=None, interval=1.0):
    registry = registry if registry is not None else MetricsRegistry()
    clock = FakeClock()
    sampler = TimeSeriesSampler(registry, interval=interval, clock=clock)
    events = []

    def emit(kind, **fields):
        events.append({"kind": kind, **fields})
        return True

    engine = SLOEngine(
        sampler, specs, clock=clock, metrics=registry, events=emit
    )
    return engine, sampler, clock, registry, events


# ----------------------------------------------------------------------- specs
def test_spec_validation():
    with pytest.raises(ValueError):
        SLOSpec(name="")
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="availability")
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="latency")  # latency needs a threshold
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="error_rate", budget=0.0)
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="latency", threshold=0.1, severity="sev1")
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="latency", threshold=0.1, windows=())


def test_spec_tenant_metric_defaults():
    latency = SLOSpec(name="lat", kind="latency", tenant="acme", threshold=0.1)
    assert latency.resolved_metric() == "tenant.acme.latency"
    errors = SLOSpec(name="err", kind="error_rate", tenant="acme")
    assert errors.resolved_metric() == "tenant.acme.rate_limited"
    assert set(errors.resolved_total()) == {
        "tenant.acme.admitted",
        "tenant.acme.rate_limited",
    }


def test_spec_explicit_metrics_win():
    spec = SLOSpec(
        name="lat",
        kind="latency",
        metric="service.batch_latency",
        threshold=0.25,
        tenant="acme",
    )
    assert spec.resolved_metric() == "service.batch_latency"


def test_parse_inline_full_form():
    spec = SLOSpec.parse_inline(
        "checkout-p99,kind=latency,tenant=acme,threshold=0.2,percentile=99,"
        "windows=10s:1m,severity=ticket"
    )
    assert spec.name == "checkout-p99"
    assert spec.tenant == "acme"
    assert spec.percentile == pytest.approx(0.99)  # percent form accepted
    assert spec.windows == ("10s", "1m")
    assert spec.severity == "ticket"


def test_parse_inline_rejects_unknown_knob():
    with pytest.raises(ValueError):
        SLOSpec.parse_inline("x,kind=latency,threshold=0.1,color=red")


def test_load_slos_round_trips(tmp_path):
    spec = SLOSpec(name="shed", kind="error_rate", tenant="acme", budget=0.05)
    path = tmp_path / "slos.json"
    path.write_text(json.dumps({"shed": spec.to_payload()}))
    loaded = load_slos(path)
    assert len(loaded) == 1
    assert loaded[0].name == spec.name
    assert loaded[0].budget == spec.budget
    assert loaded[0].resolved_metric() == spec.resolved_metric()
    assert loaded[0].to_payload() == spec.to_payload()


# ------------------------------------------------------------------ evaluation
def drive_latency(registry, sampler, clock, seconds, value, per_tick=20):
    latency = registry.histogram("tenant.acme.latency")
    for _ in range(int(seconds)):
        for _ in range(per_tick):
            latency.observe(value)
        clock.advance(1.0)
        sampler.sample()


def test_latency_breach_and_recovery_emit_once():
    spec = SLOSpec(
        name="lat",
        kind="latency",
        tenant="acme",
        threshold=0.05,
        percentile=0.99,
        windows=("10s",),
    )
    engine, sampler, clock, registry, events = make_engine([spec])

    drive_latency(registry, sampler, clock, 12, 0.001)
    assert engine.evaluate() == []  # fast traffic: quiet

    drive_latency(registry, sampler, clock, 12, 0.4)
    alerts = engine.evaluate()
    assert [a["slo"] for a in alerts] == ["lat"]
    engine.evaluate()  # still breaching: no second event
    assert [e["kind"] for e in events] == ["slo.breach"]
    assert events[0]["slo_kind"] == "latency"
    assert events[0]["tenant"] == "acme"

    drive_latency(registry, sampler, clock, 15, 0.001)
    assert engine.evaluate() == []
    assert [e["kind"] for e in events] == ["slo.breach", "slo.recovered"]
    # Counters reflect the lifecycle.
    snapshot = registry.snapshot()
    assert snapshot["counters"]["slo.breaches"] == 1
    assert snapshot["counters"]["slo.recoveries"] == 1
    assert snapshot["gauges"]["slo.firing"] == {"high_water": 1, "value": 0}


def test_multi_window_rule_requires_all_windows():
    spec = SLOSpec(
        name="lat",
        kind="latency",
        tenant="acme",
        threshold=0.05,
        windows=("10s", "1m"),
    )
    engine, sampler, clock, registry, events = make_engine([spec])

    # A long quiet baseline, then a 10s spike: the 10s window breaches but
    # the 1m window (dominated by fast traffic) does not -> no alert.
    drive_latency(registry, sampler, clock, 70, 0.001, per_tick=100)
    drive_latency(registry, sampler, clock, 10, 0.4, per_tick=5)
    assert engine.evaluate() == []

    # Sustained slowness breaches both windows together.
    drive_latency(registry, sampler, clock, 70, 0.4, per_tick=100)
    assert [a["slo"] for a in engine.evaluate()] == ["lat"]


def test_error_rate_burn_and_budget():
    spec = SLOSpec(
        name="shed",
        kind="error_rate",
        tenant="acme",
        budget=0.1,
        burn_rate=2.0,
        windows=("10s",),
        severity="ticket",
    )
    engine, sampler, clock, registry, events = make_engine([spec])
    admitted = registry.counter("tenant.acme.admitted")
    limited = registry.counter("tenant.acme.rate_limited")

    # 5% shed: half the budget, burn 0.5 < 2.0 -> quiet.
    for _ in range(12):
        admitted.inc(95)
        limited.inc(5)
        clock.advance(1.0)
        sampler.sample()
    assert engine.evaluate() == []
    payload = engine.payload()
    assert payload["shed"]["budget_remaining"] == pytest.approx(0.5)

    # 40% shed: burn 4.0 >= 2.0 -> firing, budget exhausted.
    for _ in range(12):
        admitted.inc(60)
        limited.inc(40)
        clock.advance(1.0)
        sampler.sample()
    alerts = engine.evaluate()
    assert alerts and alerts[0]["severity"] == "ticket"
    assert alerts[0]["windows"]["10s"]["burn"] == pytest.approx(4.0)
    assert engine.payload()["shed"]["budget_remaining"] == 0.0


def test_no_data_is_not_a_breach():
    specs = [
        SLOSpec(name="lat", kind="latency", tenant="ghost", threshold=0.01),
        SLOSpec(name="err", kind="error_rate", tenant="ghost"),
    ]
    engine, sampler, clock, _, _ = make_engine(specs)
    clock.advance(1.0)
    sampler.sample()
    clock.advance(1.0)
    sampler.sample()
    assert engine.evaluate() == []


def test_duplicate_names_rejected():
    spec = SLOSpec(name="dup", kind="error_rate", tenant="acme")
    with pytest.raises(ValueError):
        make_engine([spec, spec])


def test_alerts_sorted_page_first():
    specs = [
        SLOSpec(
            name="t", kind="error_rate", tenant="acme", severity="ticket",
            budget=0.01, windows=("10s",),
        ),
        SLOSpec(
            name="p", kind="error_rate", tenant="acme", severity="page",
            budget=0.01, windows=("10s",),
        ),
    ]
    engine, sampler, clock, registry, _ = make_engine(specs)
    limited = registry.counter("tenant.acme.rate_limited")
    admitted = registry.counter("tenant.acme.admitted")
    for _ in range(12):
        limited.inc(50)
        admitted.inc(50)
        clock.advance(1.0)
        sampler.sample()
    alerts = engine.evaluate()
    assert [a["severity"] for a in alerts] == ["page", "ticket"]
    assert engine.page_firing() is True


def test_broken_event_sink_does_not_break_evaluation():
    spec = SLOSpec(
        name="shed", kind="error_rate", tenant="acme", budget=0.01,
        windows=("10s",),
    )
    registry = MetricsRegistry()
    clock = FakeClock()
    sampler = TimeSeriesSampler(registry, clock=clock)

    def explode(kind, **fields):
        raise RuntimeError("sink down")

    engine = SLOEngine(sampler, [spec], clock=clock, metrics=registry, events=explode)
    limited = registry.counter("tenant.acme.rate_limited")
    admitted = registry.counter("tenant.acme.admitted")
    for _ in range(12):
        limited.inc(50)
        admitted.inc(50)
        clock.advance(1.0)
        sampler.sample()
    alerts = engine.evaluate()  # must not raise
    assert [a["slo"] for a in alerts] == ["shed"]
