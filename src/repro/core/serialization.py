"""The ``serialize()`` function of the pipeline (Section 4.3).

Context records are losslessly encoded as ``attribute: value`` pairs before
being either fed directly to the LLM (FM-style) or rewritten into fluent text
by the context-parsing step.  The subject (primary key or first attribute) is
always serialized first so that downstream steps can recover "which entity a
row is about".
"""

from __future__ import annotations

from typing import Sequence

from ..datalake.table import Record, is_missing


def record_pairs(
    record: Record,
    attributes: Sequence[str] | None = None,
    include_missing: bool = False,
) -> list[tuple[str, str]]:
    """The (attribute, value) pairs of a record, subject attribute first."""
    names = list(attributes) if attributes is not None else record.schema.names
    pk = record.schema.primary_key()
    ordered = names
    if pk is not None and pk.name in names:
        ordered = [pk.name] + [n for n in names if n != pk.name]
    pairs: list[tuple[str, str]] = []
    for name in ordered:
        if name not in record.schema:
            continue
        value = record[name]
        if is_missing(value) and not include_missing:
            continue
        pairs.append((name, "?" if is_missing(value) else str(value)))
    return pairs


def serialize_record(
    record: Record,
    attributes: Sequence[str] | None = None,
    include_missing: bool = False,
    pair_separator: str = ", ",
) -> str:
    """Serialize one record as ``"attr: value, attr: value"``."""
    return pair_separator.join(
        f"{attr}: {value}"
        for attr, value in record_pairs(record, attributes, include_missing)
    )


def serialize_records(
    records: Sequence[Record],
    attributes: Sequence[str] | None = None,
    include_missing: bool = False,
) -> str:
    """Serialize several records, one per line (the ``V`` of Section 4.3)."""
    return "\n".join(
        serialize_record(r, attributes, include_missing) for r in records
    )


def serialize_rows(rows: Sequence[Sequence[tuple[str, str]]]) -> str:
    """Serialize pre-built (attribute, value) rows, one per line."""
    return "\n".join(
        ", ".join(f"{attr}: {value}" for attr, value in row) for row in rows if row
    )


def numbered_instances(
    records: Sequence[Record],
    attributes: Sequence[str] | None = None,
) -> str:
    """Render candidate records as the numbered list used in prompt ``p_ri``."""
    return "\n".join(
        f"{index}) {serialize_record(record, attributes)}"
        for index, record in enumerate(records, start=1)
    )
