"""Language-model interface and usage accounting.

Every component of the pipeline talks to an abstract :class:`LanguageModel`
through plain-text prompts, exactly as the paper's implementation talks to the
OpenAI completion API.  The offline reproduction plugs a
:class:`~repro.llm.simulated.SimulatedLLM` behind this interface; a real
deployment would plug an API client instead without touching the pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from .tokenizer import DEFAULT_TOKENIZER, SimpleTokenizer


@dataclass
class Completion:
    """The result of one LLM call."""

    prompt: str
    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str = ""

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class UsageTracker:
    """Accumulates token and call counts across LLM invocations.

    Table 7 of the paper compares per-query token consumption between FM and
    UniDM; the pipeline snapshots this tracker before and after each query to
    compute the per-query delta.
    """

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    per_prompt_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def record(self, completion: Completion, kind: str = "other") -> None:
        self.calls += 1
        self.prompt_tokens += completion.prompt_tokens
        self.completion_tokens += completion.completion_tokens
        self.per_prompt_kind[kind] = (
            self.per_prompt_kind.get(kind, 0) + completion.total_tokens
        )

    def snapshot(self) -> tuple[int, int, int]:
        """Return (calls, prompt_tokens, completion_tokens) for delta computation."""
        return self.calls, self.prompt_tokens, self.completion_tokens

    def delta_since(self, snapshot: tuple[int, int, int]) -> "UsageDelta":
        calls, prompt, completion = snapshot
        return UsageDelta(
            calls=self.calls - calls,
            prompt_tokens=self.prompt_tokens - prompt,
            completion_tokens=self.completion_tokens - completion,
        )

    def reset(self) -> None:
        self.calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0
        self.per_prompt_kind.clear()


@dataclass(frozen=True)
class UsageDelta:
    """Token usage attributable to one query."""

    calls: int
    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LanguageModel(abc.ABC):
    """Abstract prompt-in / text-out language model."""

    #: Human-readable model identifier (e.g. ``"gpt-3-175b"``).
    name: str = "abstract"

    def __init__(self, tokenizer: SimpleTokenizer | None = None):
        self.tokenizer = tokenizer or DEFAULT_TOKENIZER
        self.usage = UsageTracker()

    @abc.abstractmethod
    def _complete_text(self, prompt: str) -> str:
        """Produce the completion text for ``prompt`` (implemented by subclasses)."""

    def _record(self, prompt: str, text: str, kind: str) -> Completion:
        """Build a :class:`Completion` for ``(prompt, text)`` and record usage."""
        completion = Completion(
            prompt=prompt,
            text=text,
            prompt_tokens=self.tokenizer.count(prompt),
            completion_tokens=self.tokenizer.count(text),
            model=self.name,
        )
        self.usage.record(completion, kind=kind)
        return completion

    def complete(self, prompt: str, kind: str = "other") -> Completion:
        """Run one completion, recording token usage.

        Parameters
        ----------
        prompt:
            The full prompt text.
        kind:
            A label for usage breakdown (e.g. ``"p_rm"`` or ``"answer"``);
            purely for accounting.
        """
        return self._record(prompt, self._complete_text(prompt), kind)

    def complete_batch(
        self, prompts: Sequence[str], kind: str = "other"
    ) -> list[Completion]:
        """Run a batch of same-kind completions, preserving input order.

        The base implementation simply loops; backends that can amortise work
        across a batch (the simulated model's per-unique-prompt memoisation, a
        real API's batched endpoint) override it.  The serving layer's
        :class:`~repro.serving.batcher.MicroBatcher` funnels coalesced
        micro-batches through this entry point.
        """
        return [self.complete(prompt, kind=kind) for prompt in prompts]

    def reset_usage(self) -> None:
        self.usage.reset()


class EchoLLM(LanguageModel):
    """Trivial model that returns a constant string; useful in unit tests."""

    name = "echo"

    def __init__(self, reply: str = "", tokenizer: SimpleTokenizer | None = None):
        super().__init__(tokenizer=tokenizer)
        self.reply = reply
        self.prompts: list[str] = []

    def _complete_text(self, prompt: str) -> str:
        self.prompts.append(prompt)
        return self.reply
