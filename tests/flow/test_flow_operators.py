"""Unit tests for the flow operators: validation, compile/apply, wire form."""

import json

import pytest

from repro.api import (
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ExtractionSpec,
    ImputationSpec,
    JoinDiscoverySpec,
    TableQASpec,
    TransformationSpec,
)
from repro.datalake import Table
from repro.flow import (
    OP_TYPES,
    Ask,
    DetectErrors,
    Extract,
    Filter,
    FlowError,
    Impute,
    Join,
    Partition,
    Resolve,
    Select,
    Transform,
    operator_from_payload,
)


@pytest.fixture
def table():
    return Table.from_dicts(
        "shops",
        [
            {"name": "ada", "city": "rome", "phone": "06-1"},
            {"name": "bob", "city": None, "phone": "06-2"},
            {"name": "cyd", "city": "pisa", "phone": None},
        ],
    )


# ---------------------------------------------------------------- compilation
def test_impute_compiles_one_spec_per_missing_cell(table):
    items = Impute("city").compile(table)
    assert len(items) == 1
    assert isinstance(items[0].spec, ImputationSpec)
    assert items[0].row == 1
    assert items[0].spec.attribute == "city"
    assert items[0].spec.rows == table.to_dicts()


def test_impute_apply_writes_answers_back(table):
    operator = Impute("city")
    items = operator.compile(table)
    out = operator.apply(table, [(items[0], "siena")], {})
    assert out.column("city") == ["rome", "siena", "pisa"]
    assert table.column("city") == ["rome", None, "pisa"]  # input untouched


def test_detect_errors_skips_missing_cells_and_adds_flag_column(table):
    operator = DetectErrors("city")
    items = operator.compile(table)
    assert [item.row for item in items] == [0, 2]
    assert all(isinstance(item.spec, ErrorDetectionSpec) for item in items)
    out = operator.apply(table, [(items[0], True), (items[1], False)], {})
    assert out.column("city_error") == [True, None, False]


def test_transform_in_place_and_to_new_column(table):
    in_place = Transform("phone", examples=[["06-1", "+39 06 1"]])
    items = in_place.compile(table)
    assert [item.row for item in items] == [0, 1]
    assert isinstance(items[0].spec, TransformationSpec)
    out = in_place.apply(table, [(items[0], "+39 06 1"), (items[1], "+39 06 2")], {})
    assert out.column("phone") == ["+39 06 1", "+39 06 2", None]

    renamed = Transform("phone", examples=[["06-1", "+39 06 1"]], output_column="intl")
    out = renamed.apply(table, [(item, "x") for item in renamed.compile(table)], {})
    assert out.column("intl") == ["x", "x", None]
    assert out.column("phone") == table.column("phone")


def test_extract_targets_the_attribute_column():
    docs = Table.from_dicts(
        "pages", [{"player": "ada", "page": "<b>ada</b> plays for rome."}]
    )
    operator = Extract("page", "team")
    items = operator.compile(docs)
    assert isinstance(items[0].spec, ExtractionSpec)
    out = operator.apply(docs, [(items[0], "rome")], {})
    assert out.column("team") == ["rome"]


def test_resolve_first_matching_candidate_wins(table):
    catalog = [
        {"id": "r1", "name": "ada", "city": "rome"},
        {"id": "r2", "name": "cyd", "city": "pisa"},
    ]
    operator = Resolve(catalog, key="id", attributes=["name"])
    items = operator.compile(table)
    # 3 rows x 2 candidates.
    assert len(items) == 6
    assert all(isinstance(item.spec, EntityResolutionSpec) for item in items)
    # Row 0 matches both candidates: the earlier candidate must win.
    results = [(item, item.row == 0) for item in items]
    out = operator.apply(table, results, {})
    assert out.column("match") == ["r1", None, None]


def test_join_merges_columns_when_joinable(table):
    regions = [
        {"town": "rome", "region": "lazio"},
        {"town": "pisa", "region": "tuscany"},
    ]
    operator = Join(regions, on="city", other_on="town", other_name="regions")
    items = operator.compile(table)
    assert len(items) == 1 and isinstance(items[0].spec, JoinDiscoverySpec)
    answers = {}
    out = operator.apply(table, [(items[0], True)], answers)
    assert out.column("region") == ["lazio", None, "tuscany"]
    assert answers == {"join:city~regions.town": True}


def test_join_never_matches_missing_keys(table):
    # SQL NULL semantics: None on either side must not join (str(None) used
    # to collide with a literal 'None' key and pick up spurious columns).
    regions = [
        {"town": None, "region": "nowhere"},
        {"town": "pisa", "region": "tuscany"},
    ]
    operator = Join(regions, on="city", other_on="town", other_name="regions")
    out = operator.apply(table, [(operator.compile(table)[0], True)], {})
    # Row 1 has city=None: it must stay unmatched, not join the None row.
    assert out.column("region") == [None, None, "tuscany"]


def test_join_not_joinable_still_adds_stable_columns(table):
    regions = [{"town": "rome", "region": "lazio"}]
    operator = Join(regions, on="city", other_on="town", other_name="regions")
    answers = {}
    out = operator.apply(table, [(operator.compile(table)[0], False)], answers)
    assert out.column("region") == [None, None, None]
    assert answers["join:city~regions.town"] is False


def test_ask_routes_answer_to_the_answers_channel(table):
    operator = Ask("how many shops?", name="n_shops")
    items = operator.compile(table)
    assert isinstance(items[0].spec, TableQASpec)
    answers = {}
    out = operator.apply(table, [(items[0], "3")], answers)
    assert answers == {"n_shops": "3"}
    assert out.to_dicts() == table.to_dicts()


# ----------------------------------------------------------------- relational
def test_filter_modes(table):
    assert len(Filter("city", "not_missing").transform(table)) == 2
    assert len(Filter("city", "missing").transform(table)) == 1
    assert len(Filter("name", "equals", value="ada").transform(table)) == 1
    assert len(Filter("name", "not_equals", value="ada").transform(table)) == 2
    with pytest.raises(FlowError):
        Filter("city", "no_such_mode")


def test_select_projects_columns(table):
    out = Select(["city", "name"]).transform(table)
    assert out.schema.names == ["city", "name"]


def test_partition_is_a_pure_marker(table):
    operator = Partition(2)
    assert operator.transform(table) is table
    with pytest.raises(FlowError):
        Partition(0)


# ------------------------------------------------------------------ wire form
ALL_OPERATORS = [
    Impute("city"),
    DetectErrors("city", flag_column="dirty"),
    Transform("phone", examples=[["a", "b"], ["c", "d"]], output_column="intl"),
    Extract("page", "team", max_chunk_chars=500),
    Resolve([{"id": 1, "name": "ada"}], key="id", attributes=["name"], max_candidates=3),
    Join([{"town": "rome", "region": "lazio"}], on="city", other_on="town",
         other_name="regions", prefix="geo_", seed=3),
    Ask("how many?", name="n", max_rows=10),
    Filter("city", "equals", value="rome"),
    Select(["city"]),
    Partition(16),
]


@pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.op)
def test_payload_round_trip(operator):
    payload = json.loads(json.dumps(operator.to_payload()))
    rebuilt = operator_from_payload(payload)
    assert rebuilt == operator
    assert rebuilt.to_payload() == operator.to_payload()


def test_registry_covers_every_operator():
    assert set(OP_TYPES) == {
        "impute",
        "detect_errors",
        "transform",
        "resolve",
        "extract",
        "join",
        "ask",
        "filter",
        "select",
        "partition",
    }


def test_unknown_and_malformed_payloads_are_rejected():
    with pytest.raises(FlowError):
        operator_from_payload({"op": "no_such_op"})
    with pytest.raises(FlowError):
        operator_from_payload({"op": "impute"})  # missing required column
    with pytest.raises(FlowError):
        operator_from_payload("not an object")


def test_operator_validation_errors():
    with pytest.raises(FlowError):
        Transform("phone", examples=[])
    with pytest.raises(FlowError):
        Transform("phone", examples=[["only-one"]])
    with pytest.raises(FlowError):
        Resolve([], key="id")
    with pytest.raises(FlowError):
        Resolve([{"name": "x"}], key="id")  # key column absent
    with pytest.raises(FlowError):
        Join([{"town": "x"}], on="city", other_on="missing")
    with pytest.raises(FlowError):
        Ask("   ")
    with pytest.raises(FlowError):
        Select([])


def test_join_accepts_a_table_and_takes_its_name(table):
    regions = Table.from_dicts("regions", [{"town": "rome", "region": "lazio"}])
    operator = Join(regions, on="city", other_on="town")
    assert operator.other_name == "regions"
    assert operator.brought_columns == ["region"]
