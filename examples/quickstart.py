"""Quickstart: impute a missing value through the unified client facade.

Builds a tiny city table, registers the world knowledge a pre-trained LLM
would plausibly have, and asks the :class:`repro.api.Client` facade to fill
in Copenhagen's missing timezone — the running example of the paper's
Figure 2.  The same ``ImputationSpec`` could be sent unchanged to a remote
service (``Client.remote(host, port)`` against ``python -m repro serve
--port``); here it runs in-process, and we also run the task object directly
to inspect the full prompt trace.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Client, ImputationSpec
from repro.core import ImputationTask, UniDMConfig
from repro.datalake import Attribute, AttributeType, Schema, Table
from repro.llm import SimulatedLLM, WorldKnowledge


def build_table() -> Table:
    schema = Schema(
        [
            Attribute("city", primary_key=True, domain="geography.city"),
            Attribute("country", domain="geography.country"),
            Attribute("population", AttributeType.NUMERIC),
            Attribute("timezone", AttributeType.CATEGORICAL, domain="geography.timezone"),
        ]
    )
    rows = [
        {"city": "Florence", "country": "Italy", "population": 382_000, "timezone": "Central European Time"},
        {"city": "Alicante", "country": "Spain", "population": 337_482, "timezone": "Central European Time"},
        {"city": "Antwerp", "country": "Belgium", "population": 530_000, "timezone": "Central European Time"},
        {"city": "London", "country": "United Kingdom", "population": 8_900_000, "timezone": "Greenwich Mean Time"},
        {"city": "Helsinki", "country": "Finland", "population": 656_000, "timezone": "Eastern European Time"},
        {"city": "Copenhagen", "country": "Denmark", "population": 809_314, "timezone": None},
    ]
    return Table("cities", schema, rows)


def build_knowledge(table: Table) -> WorldKnowledge:
    """What the (simulated) LLM already knows about these entities."""
    knowledge = WorldKnowledge()
    knowledge.set_relation_template("country", "{subject} is a city in the country {value}")
    knowledge.set_relation_template("timezone", "{subject} is in the timezone {value}")
    knowledge.add_attribute_link("country", "timezone", 0.9)
    knowledge.add_attribute_link("population", "timezone", 0.1)
    for record in table:
        knowledge.add_fact(record["city"], "country", record["country"], prevalence=0.95)
        if record["timezone"]:
            knowledge.add_fact(record["city"], "timezone", record["timezone"], prevalence=0.9)
    knowledge.add_fact("Copenhagen", "timezone", "Central European Time", prevalence=0.9)
    return knowledge


def main() -> None:
    table = build_table()
    llm = SimulatedLLM(knowledge=build_knowledge(table), seed=1)
    client = Client.local(
        llm=llm, config=UniDMConfig.full(candidate_sample_size=5, top_k_instances=3)
    )

    # The wire-friendly path: a typed spec, answered by submit().  The exact
    # same spec works against Client.remote(...) — that is the point of the
    # unified API.
    copenhagen = table[5]
    spec = ImputationSpec(
        rows=table.to_dicts(),
        target=copenhagen.to_dict(),
        attribute="timezone",
        table_name="cities",
        primary_key="city",
    )
    outcome = client.submit(spec)
    print("Spec answer      :", outcome.answer)
    print(f"Spec cost        : {outcome.calls} calls, {outcome.tokens} tokens "
          f"({outcome.elapsed * 1000:.1f} ms)")

    # The in-process path: run the task object to inspect the prompt trace.
    task = ImputationTask(table, copenhagen, "timezone")
    result = client.run_task(task)
    print("Target query     :", result.query)
    print("Helpful attribute:", result.trace.meta_retrieval_output)
    print("Parsed context   :", result.context_text)
    print("Target prompt    :", result.trace.target_prompt)
    print("Answer           :", result.value)
    print(f"LLM cost         : {result.usage.calls} calls, {result.total_tokens} tokens")


if __name__ == "__main__":
    main()
