"""Deterministic fault injection for the elastic cluster.

Elasticity is only trustworthy if every transition — join, drained leave,
crash, restart, autoscale — is *driven* into its failure modes rather than
observed by luck.  :class:`FaultInjector` is the seedable harness
``tests/cluster/test_elasticity.py`` uses to do that:

* **kill-worker-at-Nth-submit** — the wrapped worker hard-kills itself the
  moment its Nth batch arrives, *before* any backend work happens, so the
  requeue path's exactly-once property is assertable via the ``llm.calls``
  counter;
* **hang-ping** — liveness probes stall for a configured delay (the gray
  failure a health sweep must tolerate);
* **torn-migration** — the next shard-to-shard migration truncates its
  target mid-line, exercising the JSONL loader's torn-line tolerance;
* **slow-drain** — every submit to a worker crawls, stretching the window
  ``remove_worker(drain=True)`` must wait out.

Everything is deterministic: rules fire at exact counters, and the only
randomness — :meth:`FaultInjector.plan_kill` choosing a victim and a kill
point — comes from a seeded :class:`random.Random`, so the same seed always
produces the same schedule (asserted by the test suite).  Every injection
is appended to :attr:`FaultInjector.log` for reproducibility assertions.
"""

from __future__ import annotations

import random
import threading
import time
from typing import TYPE_CHECKING, Iterable

from ..tenancy import DEFAULT_TENANT
from .workers import Worker, WorkerDeadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.cache import PersistentCache

__all__ = ["FaultInjector", "FaultyWorker"]


class FaultInjector:
    """Seedable rule book of cluster faults.

    Parameters
    ----------
    seed:
        Seed of the injector's private RNG.  Only :meth:`plan_kill` draws
        from it; armed rules themselves fire deterministically.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        #: Every injection that fired, in order: ``{"fault", "worker", ...}``.
        self.log: list[dict] = []
        self._lock = threading.Lock()
        self._kill_at: dict[str, int] = {}
        self._submits: dict[str, int] = {}
        self._hang_ping: dict[str, float] = {}
        self._slow_submit: dict[str, float] = {}
        self._tears_armed = 0

    # ------------------------------------------------------------------- rules
    def kill_at_submit(self, worker_id: str, nth: int) -> None:
        """Arm: ``worker_id`` hard-kills on its ``nth`` submit *after* arming.

        Counted from the moment the rule is armed (1-based), so a warmed
        cluster can still be told "die on your next submit" — the absolute
        submit history does not shift the kill point.
        """
        if nth < 1:
            raise ValueError("nth must be >= 1")
        with self._lock:
            self._kill_at[worker_id] = self._submits.get(worker_id, 0) + nth

    def hang_ping(self, worker_id: str, seconds: float) -> None:
        """Arm: every ping of ``worker_id`` stalls ``seconds`` first."""
        with self._lock:
            self._hang_ping[worker_id] = seconds

    def slow_drain(self, worker_id: str, seconds: float) -> None:
        """Arm: every submit to ``worker_id`` sleeps ``seconds`` first."""
        with self._lock:
            self._slow_submit[worker_id] = seconds

    def torn_migration(self, times: int = 1) -> None:
        """Arm: the next ``times`` migrations tear their target mid-line."""
        with self._lock:
            self._tears_armed += times

    def plan_kill(
        self, worker_ids: Iterable[str], max_submit: int = 5
    ) -> tuple[str, int]:
        """Seed-derived kill point: pick a victim and an Nth submit, arm it.

        The only RNG consumer — with the same seed and the same inputs the
        plan is identical, which is what makes a fault schedule shareable
        in a bug report (``FaultInjector(seed=...)`` reproduces it).
        """
        victim = self.rng.choice(sorted(worker_ids))
        nth = self.rng.randint(1, max_submit)
        self.kill_at_submit(victim, nth)
        return victim, nth

    # ------------------------------------------------------------------- hooks
    def wrap(self, worker: Worker) -> "FaultyWorker":
        """Decorate ``worker`` so the armed rules apply to it.

        Suitable as the ``worker_decorator`` of
        :meth:`repro.cluster.router.Router.local` — revived workers are
        wrapped again, and their submit counter keeps counting across
        incarnations (rules address the worker *id*, not the object).
        """
        return FaultyWorker(worker, self)

    def on_submit(self, worker: Worker) -> None:
        """Consult the rules before a submit reaches ``worker``."""
        worker_id = worker.worker_id
        with self._lock:
            count = self._submits.get(worker_id, 0) + 1
            self._submits[worker_id] = count
            kill_at = self._kill_at.get(worker_id)
            slow = self._slow_submit.get(worker_id)
        if slow:
            self.log.append(
                {"fault": "slow_drain", "worker": worker_id, "seconds": slow}
            )
            time.sleep(slow)
        if kill_at is not None and count == kill_at:
            self.log.append(
                {"fault": "kill_at_submit", "worker": worker_id, "submit": count}
            )
            worker.kill()
            raise WorkerDeadError(
                f"fault injection killed {worker_id} at submit {count}"
            )

    def on_ping(self, worker: Worker) -> None:
        """Consult the rules before a ping reaches ``worker``."""
        with self._lock:
            hang = self._hang_ping.get(worker.worker_id)
        if hang:
            self.log.append(
                {"fault": "hang_ping", "worker": worker.worker_id, "seconds": hang}
            )
            time.sleep(hang)

    def maybe_tear(self, shard: "PersistentCache") -> None:
        """Truncate the shard's newest entry file mid-line if a tear is armed.

        Models a migration writer crashing mid-append: the torn final line
        must be skipped by the loader, costing at most one cache miss —
        never a wrong answer.
        """
        with self._lock:
            if self._tears_armed <= 0:
                return
            self._tears_armed -= 1
        files = sorted(
            (p for p in shard.path.glob("shard-*.jsonl") if p.stat().st_size > 0),
            key=lambda p: p.stat().st_mtime,
        )
        if not files:
            return
        target = files[-1]
        raw = target.read_bytes()
        last_line_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        cut = last_line_start + max(1, (len(raw) - last_line_start) // 2)
        target.write_bytes(raw[:cut])
        self.log.append(
            {"fault": "torn_migration", "file": target.name, "kept_bytes": cut}
        )

    def submits(self, worker_id: str) -> int:
        """How many submits ``worker_id`` has seen (deterministic clock)."""
        with self._lock:
            return self._submits.get(worker_id, 0)


class FaultyWorker(Worker):
    """A worker wrapper that consults a :class:`FaultInjector` first.

    Everything else delegates verbatim, so a wrapped worker is
    indistinguishable from its inner one until a rule fires — the router,
    supervisor and autoscaler never know the harness is there.
    """

    def __init__(self, inner: Worker, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    @property
    def worker_id(self) -> str:  # type: ignore[override]
        return self.inner.worker_id

    def submit(
        self,
        requests: "list[dict]",
        priority: int = 0,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
    ) -> "list[dict]":
        self.injector.on_submit(self.inner)
        return self.inner.submit(
            requests, priority, tenant=tenant, weight=weight
        )

    def ping(self) -> bool:
        self.injector.on_ping(self.inner)
        return self.inner.ping()

    def stats(self):
        return self.inner.stats()

    def shard(self):
        return self.inner.shard()

    def shard_path(self):
        return self.inner.shard_path()

    def close(self) -> None:
        self.inner.close()

    def kill(self) -> None:
        self.inner.kill()
