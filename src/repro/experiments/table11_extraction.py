"""Table 11 — information extraction text F1 on the SWDE-style NBA benchmark.

Compares Evaporate-code (single synthesised extraction function),
Evaporate-code+ (function ensemble) and UniDM.
"""

from __future__ import annotations

from ..baselines import EvaporateCode, EvaporateCodePlus
from ..datasets import load_dataset
from ..eval import evaluate, format_table
from .common import make_unidm, result_row

PAPER_RESULTS: dict[str, float] = {
    "Evaporate-code": 40.6,
    "Evaporate-code+": 84.6,
    "UniDM": 70.1,
}

DATASET = "nba_players"


def methods_for(dataset, seed: int):
    return [
        ("Evaporate-code", EvaporateCode(seed=seed + 3)),
        ("Evaporate-code+", EvaporateCodePlus(seed=seed + 3)),
        ("UniDM", make_unidm(dataset, seed=seed + 2)),
    ]


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    dataset = load_dataset(DATASET, seed=seed)
    rows: list[dict] = []
    for method_name, method in methods_for(dataset, seed):
        result = evaluate(method, dataset, max_tasks=max_tasks)
        rows.append(
            result_row(result, method=method_name, paper=PAPER_RESULTS[method_name])
        )
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["method", "score", "paper"],
        title="Table 11 — Information extraction text F1 (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
