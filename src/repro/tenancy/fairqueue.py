"""Weighted-fair queueing across tenants, priority-ordered within a tenant.

:class:`WeightedFairQueue` implements start-time fair queueing (SFQ) over a
single shared resource — the engine's batch lock, or a cluster worker's
work queue.  Every queued item carries a ``cost`` (requests in the batch)
and belongs to a tenant with a scheduling ``weight``; the queue maintains a
global virtual time and one virtual-finish tag per tenant:

* at ``push``, the item lands on its tenant's private heap, ordered by
  ``(-priority, arrival)`` — exactly the :class:`repro.obs.PriorityLock`
  order, so **within** a tenant nothing changes;
* at ``pop``, every backlogged tenant bids ``start = max(vtime, vfinish)``
  and the lowest bid wins (ties broken by the bidders' head priorities,
  then arrival).  Virtual time jumps to the winner's start and the winner's
  ``vfinish`` advances by ``cost / weight`` — so a tenant with weight 2
  drains twice the cost per unit of virtual time, and an idle tenant
  re-enters at the current virtual time instead of cashing in saved credit.

With a single tenant every bid is trivially the minimum, so the dequeue
order collapses to the tenant heap's ``(-priority, arrival)`` — bit-identical
to ``PriorityLock`` (property-tested in ``tests/tenancy/test_fairqueue.py``).

Three consumers wrap the queue:

* :class:`WeightedFairLock` — the drop-in fair replacement for
  :class:`~repro.obs.PriorityLock` guarding the serving engine;
* :class:`FairBlockingQueue` — the bounded blocking queue behind each
  cluster :class:`~repro.cluster.workers.ThreadWorker`.

Neither consumer needs tenancy to be configured: untagged work rides the
``default`` tenant at weight 1 and observes today's exact semantics.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from contextlib import contextmanager
from typing import Any, Iterator

#: Tenant every untagged item is accounted to.
DEFAULT_TENANT = "default"


class _TenantQueue:
    """One tenant's private backlog plus its virtual-finish tag."""

    __slots__ = ("name", "weight", "vfinish", "heap")

    def __init__(self, name: str, weight: float):
        self.name = name
        self.weight = weight
        self.vfinish = 0.0
        #: Heap of ``(-priority, seq, cost, item)``; ``seq`` is globally
        #: unique, so comparisons never reach the (unorderable) item.
        self.heap: list[tuple[int, int, float, Any]] = []


class WeightedFairQueue:
    """Start-time fair queue: weighted across tenants, priority within.

    Not thread-safe on its own — :class:`WeightedFairLock` and
    :class:`FairBlockingQueue` wrap it in their own condition variables.
    """

    def __init__(self) -> None:
        self._vtime = 0.0
        self._tenants: dict[str, _TenantQueue] = {}
        self._seq = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(
        self,
        item: Any,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
        priority: int = 0,
        cost: float = 1.0,
    ) -> None:
        """Queue ``item`` under ``tenant``; higher ``priority`` pops first
        within the tenant, ``cost`` is the virtual-time it will consume."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if cost <= 0:
            raise ValueError("cost must be positive")
        queue = self._tenants.get(tenant)
        if queue is None:
            queue = self._tenants[tenant] = _TenantQueue(tenant, weight)
        queue.weight = weight  # config changes take effect on next pop
        heapq.heappush(queue.heap, (-int(priority), next(self._seq), float(cost), item))
        self._size += 1

    def _select(self) -> _TenantQueue:
        """The tenant the next ``pop`` serves (raises ``IndexError`` if empty)."""
        best: _TenantQueue | None = None
        best_bid: tuple[float, int, int] | None = None
        for queue in self._tenants.values():
            if not queue.heap:
                continue
            start = max(self._vtime, queue.vfinish)
            bid = (start, queue.heap[0][0], queue.heap[0][1])
            if best_bid is None or bid < best_bid:
                best, best_bid = queue, bid
        if best is None:
            raise IndexError("pop from an empty WeightedFairQueue")
        return best

    def peek(self) -> Any:
        """The item ``pop`` would return, without removing it."""
        return self._select().heap[0][3]

    def pop(self) -> Any:
        """Remove and return the fair-share winner, advancing virtual time."""
        queue = self._select()
        start = max(self._vtime, queue.vfinish)
        _, _, cost, item = heapq.heappop(queue.heap)
        self._vtime = start
        queue.vfinish = start + cost / queue.weight
        self._size -= 1
        return item


class WeightedFairLock:
    """A mutex whose waiters acquire weighted-fair across tenants.

    Drop-in replacement for :class:`repro.obs.PriorityLock`: with every
    caller on the ``default`` tenant (the untagged path) the acquisition
    order is identical — priority desc, then arrival.  Tagged callers are
    scheduled by :class:`WeightedFairQueue`, so one tenant's backlog cannot
    monopolise the resource.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._locked = False
        self._queue = WeightedFairQueue()

    def acquire(
        self,
        priority: int = 0,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
        cost: float = 1.0,
    ) -> None:
        with self._cond:
            ticket = object()
            self._queue.push(
                ticket, tenant=tenant, weight=weight, priority=priority, cost=cost
            )
            while self._locked or self._queue.peek() is not ticket:
                self._cond.wait()
            popped = self._queue.pop()
            assert popped is ticket  # peek() and pop() select identically
            self._locked = True

    def release(self) -> None:
        with self._cond:
            if not self._locked:
                raise RuntimeError("release of an unheld WeightedFairLock")
            self._locked = False
            self._cond.notify_all()

    @contextmanager
    def hold(
        self,
        priority: int = 0,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
        cost: float = 1.0,
    ) -> Iterator[None]:
        self.acquire(priority, tenant=tenant, weight=weight, cost=cost)
        try:
            yield
        finally:
            self.release()

    def __enter__(self) -> "WeightedFairLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class FairBlockingQueue:
    """Bounded blocking queue dequeued weighted-fair across tenants.

    The cluster :class:`~repro.cluster.workers.ThreadWorker` spine:
    ``put`` blocks while ``maxsize`` items wait (backpressure, exactly like
    ``queue.PriorityQueue(maxsize=...)``), ``get`` blocks while empty, and
    :meth:`put_final` enqueues a shutdown sentinel served only after every
    real item drained — the fair-queue equivalent of the old
    ``(float("inf"), seq, _STOP)`` trick.
    """

    def __init__(self, maxsize: int = 0):
        self._maxsize = maxsize
        self._cond = threading.Condition()
        self._queue = WeightedFairQueue()
        self._final: list[Any] = []

    def qsize(self) -> int:
        with self._cond:
            return len(self._queue)

    def put(
        self,
        item: Any,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
        priority: int = 0,
        cost: float = 1.0,
    ) -> None:
        with self._cond:
            while self._maxsize > 0 and len(self._queue) >= self._maxsize:
                self._cond.wait()
            self._queue.push(
                item, tenant=tenant, weight=weight, priority=priority, cost=cost
            )
            self._cond.notify_all()

    def put_final(self, item: Any) -> None:
        """Enqueue ``item`` to be served only once the fair queue is drained."""
        with self._cond:
            self._final.append(item)
            self._cond.notify_all()

    def get(self) -> Any:
        with self._cond:
            while len(self._queue) == 0 and not self._final:
                self._cond.wait()
            if len(self._queue) > 0:
                item = self._queue.pop()
            else:
                item = self._final.pop(0)
            self._cond.notify_all()
            return item


__all__ = [
    "DEFAULT_TENANT",
    "FairBlockingQueue",
    "WeightedFairLock",
    "WeightedFairQueue",
]
