"""Information extraction dataset (SWDE NBA-player style, Appendix E).

Each document is a semi-structured (HTML-flavoured) biography of a basketball
player; the closed extraction schema is ``player / height / position /
college``.  Documents come in several templates of varying messiness so that a
regex-synthesis baseline (Evaporate-code) generalises poorly across templates
while LLM-style reading does better, and an ensemble over templates
(Evaporate-code+) does best — the ordering of Table 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tasks.information_extraction import InformationExtractionTask
from ..core.types import TaskType
from ..datalake.schema import Attribute, Schema
from ..datalake.table import Table
from ..llm.knowledge import WorldKnowledge
from .base import BenchmarkDataset, DatasetBuilder

_FIRST_NAMES = [
    "Kevin", "Magic", "Dirk", "Tim", "Allen", "Steve", "Ray", "Paul",
    "Jason", "Vince", "Tony", "Grant", "Chris", "Shawn", "Alonzo", "Reggie",
]
_LAST_NAMES = [
    "Durant", "Johnson", "Nowitzki", "Duncan", "Iverson", "Nash", "Allen",
    "Pierce", "Kidd", "Carter", "Parker", "Hill", "Webber", "Kemp",
    "Mourning", "Miller",
]
_POSITIONS = [
    "point guard", "shooting guard", "small forward", "power forward", "center",
]
_COLLEGES = [
    "Texas", "Michigan State", "Wake Forest", "Georgetown", "Santa Clara",
    "Connecticut", "Kansas", "California", "North Carolina", "Duke", "UCLA",
    "Arizona",
]
_TEAMS = [
    "Phoenix Suns", "Dallas Mavericks", "San Antonio Spurs", "Boston Celtics",
    "Miami Heat", "Indiana Pacers", "Seattle SuperSonics", "New Jersey Nets",
]

#: Document templates; ``{player}`` etc. are filled per record.  Later templates
#: are progressively less regular (extra markup, reordered fields, prose).
_TEMPLATES = (
    (
        "<h1>{player}</h1>\n"
        "<p>{player} is an American professional basketball player for the "
        "{team} of the NBA.</p>\n"
        "<ul><li>Height: {height}</li><li>Position: {position}</li>"
        "<li>College: {college}</li></ul>"
    ),
    (
        "<div class='infobox'><span>{player}</span>"
        "<table><tr><td>Listed height</td><td>{height}</td></tr>"
        "<tr><td>Playing position</td><td>{position}</td></tr>"
        "<tr><td>College career</td><td>{college}</td></tr></table>"
        "<p>{player} spent his college years at {college} before joining the {team}.</p></div>"
    ),
    (
        "<article>{player}, standing {height}, made his name as a {position} "
        "after leaving {college}. He currently suits up for the {team}. "
        "Scouts praise how {player} reads the game.</article>"
    ),
    (
        "<body><p>Profile page.</p><p>Name - {player}. Team - {team}.</p>"
        "<p>The franchise lists him at {height}; he lines up at the {position} "
        "spot. Before the draft he attended {college}.</p></body>"
    ),
)

ATTRIBUTES = ("player", "height", "position", "college")


@dataclass(frozen=True)
class PlayerDocument:
    """One generated document with its ground-truth attribute values."""

    document: str
    template_index: int
    values: dict[str, str]


class NBAPlayersDataset(DatasetBuilder):
    """SWDE-style closed information extraction over NBA player pages."""

    name = "nba_players"
    task_type = TaskType.INFORMATION_EXTRACTION

    def __init__(self, seed: int = 0, n_documents: int = 60):
        super().__init__(seed)
        self.n_documents = n_documents

    def _make_document(self, index: int) -> PlayerDocument:
        player = (
            f"{_FIRST_NAMES[index % len(_FIRST_NAMES)]} "
            f"{_LAST_NAMES[(index * 7 + index // len(_FIRST_NAMES)) % len(_LAST_NAMES)]}"
        )
        height = f"{int(self.rng.integers(6, 8))} ft {int(self.rng.integers(0, 12))} in"
        values = {
            "player": player,
            "height": height,
            "position": self.choice(_POSITIONS),
            "college": self.choice(_COLLEGES),
        }
        # Real SWDE sites render most pages from one dominant template plus a
        # long tail of variants; the skew is what separates a single-function
        # extractor (Evaporate-code) from an ensemble (Evaporate-code+).
        template_index = int(
            self.rng.choice(len(_TEMPLATES), p=[0.45, 0.25, 0.20, 0.10])
        )
        document = _TEMPLATES[template_index].format(team=self.choice(_TEAMS), **values)
        return PlayerDocument(document=document, template_index=template_index, values=values)

    def build(self) -> BenchmarkDataset:
        knowledge = WorldKnowledge()
        knowledge.add_domain_values("position", _POSITIONS)
        knowledge.add_domain_values("college", _COLLEGES)

        documents = [self._make_document(i) for i in range(self.n_documents)]
        # A reference structured view (the target table of the extraction task).
        schema = Schema([Attribute("player", primary_key=True)] + [Attribute(a) for a in ATTRIBUTES[1:]])
        reference = Table("nba_players", schema, [d.values for d in documents])

        tasks: list[InformationExtractionTask] = []
        ground_truth: list[str] = []
        for doc in documents:
            for attribute in ATTRIBUTES:
                tasks.append(InformationExtractionTask(doc.document, attribute))
                ground_truth.append(doc.values[attribute])

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables={reference.name: reference},
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
            extra={"documents": documents, "attributes": ATTRIBUTES},
        )
