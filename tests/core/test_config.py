"""Unit tests for UniDMConfig."""

import pytest

from repro.core import UniDMConfig


def test_default_config_matches_paper_setting():
    config = UniDMConfig()
    assert config.use_meta_retrieval and config.use_instance_retrieval
    assert config.use_context_parsing and config.use_cloze_prompt
    assert config.n_meta_attributes == 1
    assert config.top_k_instances == 3
    assert config.candidate_sample_size == 50


def test_named_variants():
    assert not UniDMConfig.random_context().use_meta_retrieval
    assert not UniDMConfig.random_context().use_instance_retrieval
    assert UniDMConfig.random_context().use_cloze_prompt
    baseline = UniDMConfig.baseline_prompting()
    assert not any(
        [
            baseline.use_meta_retrieval,
            baseline.use_instance_retrieval,
            baseline.use_context_parsing,
            baseline.use_cloze_prompt,
        ]
    )
    assert UniDMConfig.no_retrieval() == UniDMConfig.random_context()


def test_config_validation():
    with pytest.raises(ValueError):
        UniDMConfig(n_meta_attributes=-1)
    with pytest.raises(ValueError):
        UniDMConfig(top_k_instances=-2)
    with pytest.raises(ValueError):
        UniDMConfig(candidate_sample_size=2, top_k_instances=5)


def test_with_updates_and_describe():
    config = UniDMConfig.full().with_updates(top_k_instances=5)
    assert config.top_k_instances == 5
    assert "instance" in UniDMConfig.full().describe()
    assert UniDMConfig.baseline_prompting().describe() == "-/-/-/-"
