"""Property-based tests for the string similarity utilities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalake import text

words = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F), min_size=0, max_size=30)
phrases = st.lists(words, min_size=0, max_size=6).map(" ".join)


@given(phrases)
@settings(max_examples=60)
def test_similarity_is_reflexive(value):
    if value.strip():
        assert text.string_similarity(value, value) > 0.95
    assert 0.0 <= text.string_similarity(value, value) <= 1.0


@given(phrases, phrases)
@settings(max_examples=60)
def test_similarity_symmetric_and_bounded(a, b):
    ab = text.string_similarity(a, b)
    ba = text.string_similarity(b, a)
    assert abs(ab - ba) < 1e-9
    assert 0.0 <= ab <= 1.0


@given(phrases, phrases)
@settings(max_examples=60)
def test_levenshtein_triangle_like_properties(a, b):
    distance = text.levenshtein(a, b)
    assert distance >= 0
    assert distance == text.levenshtein(b, a)
    if text.normalize(a) == text.normalize(b):
        assert distance == 0


@given(phrases, phrases)
@settings(max_examples=60)
def test_jaccard_bounds_and_identity(a, b):
    score = text.token_jaccard(a, b)
    assert 0.0 <= score <= 1.0
    if text.tokenize(a):
        assert text.token_jaccard(a, a) == 1.0


@given(phrases)
@settings(max_examples=40)
def test_embedding_is_unit_norm_or_zero(value):
    import numpy as np

    vector = text.hashed_ngram_vector(value, dim=64)
    norm = np.linalg.norm(vector)
    assert norm == 0.0 or abs(norm - 1.0) < 1e-9


@given(phrases)
@settings(max_examples=40)
def test_normalize_idempotent(value):
    once = text.normalize(value)
    assert text.normalize(once) == once
