"""Property-based round-trip tests: ``from_request(to_request(spec))``.

For every registered :class:`~repro.api.specs.TaskSpec`, a spec serialized to
its wire payload — including a full JSON encode/decode, as the service would
see it — must deserialize back to an equal spec that materialises an
equivalent pipeline task (same type, same target query).  Envelope encoding
is exercised for both protocol generations.
"""

import json
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ExtractionSpec,
    ImputationSpec,
    JoinDiscoverySpec,
    PipelineSpec,
    SPEC_TYPES,
    StatsSpec,
    TableQASpec,
    TransformationSpec,
    encode_request,
    parse_request,
    spec_from_request,
)

SETTINGS = settings(max_examples=30, deadline=None)

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
cell_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-999, 999),
    st.text(alphabet=string.ascii_letters + " .-'", max_size=10),
)
texts = st.text(alphabet=string.ascii_letters + string.digits + " .-", max_size=16)


@st.composite
def tables(draw, max_cols=4, max_rows=4):
    """Column names plus rows (the wire form of a table).

    The first row carries every column; later rows may be sparse (missing
    cells omitted), matching the v1 service contract.
    """
    cols = draw(st.lists(names, unique=True, min_size=1, max_size=max_cols))
    rows = [{c: draw(cell_values) for c in cols}]
    for _ in range(draw(st.integers(0, max_rows - 1))):
        present = draw(st.lists(st.sampled_from(cols), unique=True))
        rows.append({c: draw(cell_values) for c in present})
    return cols, rows


@st.composite
def imputation_specs(draw):
    cols, rows = draw(tables())
    return ImputationSpec(
        rows=rows,
        target={c: draw(cell_values) for c in draw(st.lists(st.sampled_from(cols), unique=True))},
        attribute=draw(st.sampled_from(cols)),
        table_name=draw(names),
        primary_key=draw(st.none() | st.sampled_from(cols)),
    )


@st.composite
def transformation_specs(draw):
    return TransformationSpec(
        value=draw(texts),
        examples=draw(st.lists(st.lists(texts, min_size=2, max_size=2), min_size=1, max_size=4)),
    )


@st.composite
def extraction_specs(draw):
    return ExtractionSpec(
        document=draw(texts),
        attribute=draw(names),
        max_chunk_chars=draw(st.integers(1, 4000)),
    )


@st.composite
def table_qa_specs(draw):
    _, rows = draw(tables())
    return TableQASpec(rows=rows, question=draw(names), table_name=draw(names))


@st.composite
def entity_resolution_specs(draw):
    cols = draw(st.lists(names, unique=True, min_size=1, max_size=4))
    return EntityResolutionSpec(
        record_a={c: draw(cell_values) for c in cols},
        record_b={c: draw(cell_values) for c in cols},
        attributes=draw(
            st.none() | st.lists(st.sampled_from(cols), unique=True, min_size=1)
        ),
    )


@st.composite
def error_detection_specs(draw):
    cols, rows = draw(tables())
    attribute = draw(st.sampled_from(cols))
    return ErrorDetectionSpec(
        rows=rows,
        target={attribute: draw(cell_values)},
        attribute=attribute,
        primary_key=draw(st.none() | st.sampled_from(cols)),
    )


@st.composite
def join_discovery_specs(draw):
    cols_a, rows_a = draw(tables(max_cols=3, max_rows=3))
    cols_b, rows_b = draw(tables(max_cols=3, max_rows=3))
    return JoinDiscoverySpec(
        table_a={"name": draw(names), "rows": rows_a},
        column_a=draw(st.sampled_from(cols_a)),
        table_b={"name": draw(names), "rows": rows_b},
        column_b=draw(st.sampled_from(cols_b)),
        n_sample_values=draw(st.integers(1, 6)),
        n_sample_records=draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 99)),
    )


@st.composite
def pipeline_specs(draw):
    cols, rows = draw(tables())
    column = draw(st.sampled_from(cols))
    stages = [{"op": "impute", "column": column}]
    if draw(st.booleans()):
        stages.append({"op": "detect_errors", "column": column})
    if draw(st.booleans()):
        stages.append({"op": "select", "columns": list(cols)})
    return PipelineSpec(
        rows=rows,
        stages=stages,
        table_name=draw(names),
        primary_key=draw(st.none() | st.sampled_from(cols)),
        partition_size=draw(st.none() | st.integers(1, 4)),
    )


def stats_specs():
    return st.builds(
        StatsSpec,
        prefix=st.text(string.ascii_lowercase + ".", max_size=12),
    )


ALL_SPEC_STRATEGIES = [
    imputation_specs(),
    transformation_specs(),
    extraction_specs(),
    table_qa_specs(),
    entity_resolution_specs(),
    error_detection_specs(),
    join_discovery_specs(),
    pipeline_specs(),
    stats_specs(),
]


def _assert_round_trip(spec):
    # Through the registry, with a real JSON encode/decode in the middle.
    payload = json.loads(json.dumps(spec.to_request()))
    rebuilt = spec_from_request(payload)
    assert rebuilt == spec
    if isinstance(spec, PipelineSpec):
        # A pipeline materialises a flow plan rather than a single task.
        assert rebuilt.to_pipeline().to_payload() == spec.to_pipeline().to_payload()
        return
    if isinstance(spec, StatsSpec):
        # A stats request is answered by the front-end, never materialised.
        with pytest.raises(ValueError):
            rebuilt.to_task()
        return
    # The rebuilt spec materialises an equivalent pipeline task.
    original_task, rebuilt_task = spec.to_task(), rebuilt.to_task()
    assert type(rebuilt_task) is type(original_task)
    assert rebuilt_task.query() == original_task.query()


@pytest.mark.parametrize("strategy", ALL_SPEC_STRATEGIES, ids=lambda s: "spec")
@SETTINGS
@given(data=st.data())
def test_round_trip_reproduces_an_equivalent_task(strategy, data):
    _assert_round_trip(data.draw(strategy))


@SETTINGS
@given(data=st.data(), version=st.sampled_from([1, 2]), request_id=st.integers(0, 999))
def test_envelope_round_trip_both_generations(data, version, request_id):
    spec = data.draw(st.one_of(ALL_SPEC_STRATEGIES))
    wire = json.loads(json.dumps(encode_request(spec, request_id, version)))
    parsed = parse_request(wire)
    assert parsed.spec == spec
    assert parsed.id == request_id
    assert parsed.version == version


def test_every_registered_type_has_a_strategy():
    # Guard against a new spec type landing without round-trip coverage: one
    # strategy per registered wire type, no more, no less.
    assert len(ALL_SPEC_STRATEGIES) == len(SPEC_TYPES)
