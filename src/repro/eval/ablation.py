"""Ablation driver (Tables 8-10 of the paper).

Runs the UniDM pipeline with components switched off one at a time / in the
cumulative combinations the paper reports, on the same benchmark, and returns
one row per variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.config import UniDMConfig
from ..datasets.base import BenchmarkDataset
from .harness import EvaluationResult, evaluate


@dataclass(frozen=True)
class AblationVariant:
    """One row of an ablation table."""

    label: str
    config: UniDMConfig

    def flags(self) -> dict[str, str]:
        """Checkmark flags matching the paper's table layout."""
        mark = lambda on: "yes" if on else ""  # noqa: E731 - tiny formatter
        return {
            "instance_retrieval": mark(self.config.use_instance_retrieval),
            "meta_retrieval": mark(self.config.use_meta_retrieval),
            "target_prompt": mark(self.config.use_cloze_prompt),
            "context_parsing": mark(self.config.use_context_parsing),
        }


#: The cumulative component combinations of Tables 8 and 9 (imputation).
IMPUTATION_ABLATION_LADDER: tuple[AblationVariant, ...] = (
    AblationVariant("none", UniDMConfig.baseline_prompting()),
    AblationVariant(
        "instance retrieval",
        UniDMConfig(
            use_instance_retrieval=True,
            use_meta_retrieval=False,
            use_cloze_prompt=False,
            use_context_parsing=False,
        ),
    ),
    AblationVariant(
        "meta retrieval",
        UniDMConfig(
            use_instance_retrieval=False,
            use_meta_retrieval=True,
            use_cloze_prompt=False,
            use_context_parsing=False,
        ),
    ),
    AblationVariant(
        "instance + meta retrieval",
        UniDMConfig(
            use_instance_retrieval=True,
            use_meta_retrieval=True,
            use_cloze_prompt=False,
            use_context_parsing=False,
        ),
    ),
    AblationVariant(
        "retrieval + target prompt",
        UniDMConfig(
            use_instance_retrieval=True,
            use_meta_retrieval=True,
            use_cloze_prompt=True,
            use_context_parsing=False,
        ),
    ),
    AblationVariant("full UniDM", UniDMConfig.full()),
)

#: The combinations of Table 10 (transformation: only the two prompt-side
#: components apply, retrieval is not used for this task).
TRANSFORMATION_ABLATION_LADDER: tuple[AblationVariant, ...] = (
    AblationVariant("none", UniDMConfig.baseline_prompting()),
    AblationVariant(
        "target prompt",
        UniDMConfig(
            use_instance_retrieval=False,
            use_meta_retrieval=False,
            use_cloze_prompt=True,
            use_context_parsing=False,
        ),
    ),
    AblationVariant(
        "context parsing",
        UniDMConfig(
            use_instance_retrieval=False,
            use_meta_retrieval=False,
            use_cloze_prompt=False,
            use_context_parsing=True,
        ),
    ),
    AblationVariant(
        "target prompt + context parsing",
        UniDMConfig(
            use_instance_retrieval=False,
            use_meta_retrieval=False,
            use_cloze_prompt=True,
            use_context_parsing=True,
        ),
    ),
)


def run_ablation(
    dataset: BenchmarkDataset,
    method_factory: Callable[[UniDMConfig], object],
    variants: Sequence[AblationVariant],
    max_tasks: int | None = None,
) -> list[tuple[AblationVariant, EvaluationResult]]:
    """Evaluate every ablation variant on the benchmark.

    ``method_factory`` builds a fresh method (pipeline + fresh LLM seed) for a
    given config, so no state leaks between variants.
    """
    results = []
    for variant in variants:
        method = method_factory(variant.config)
        results.append((variant, evaluate(method, dataset, max_tasks=max_tasks)))
    return results


def ablation_rows(
    results: Sequence[tuple[AblationVariant, EvaluationResult]],
) -> list[dict[str, object]]:
    """Long-form rows (one per variant) for reporting."""
    rows = []
    for variant, result in results:
        row: dict[str, object] = {"variant": variant.label}
        row.update(variant.flags())
        row["score"] = result.score_percent
        row["metric"] = result.metric_name
        rows.append(row)
    return rows
