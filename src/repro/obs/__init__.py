"""Observability layer: metrics, tracing, events, export, admission control.

The serving stack (engine → batcher → cache → router) grew fast; this
package is the measurement layer that keeps it honest.  Nine pieces:

* :mod:`repro.obs.metrics` — a dependency-free metrics core: thread-safe
  :class:`Counter`, :class:`Gauge` and fixed-bucket latency
  :class:`Histogram` objects behind a :class:`MetricsRegistry` whose
  ``snapshot()`` is plain JSON (counters, gauges, histogram percentiles).
  Every hot path of the stack is instrumented against the process-default
  registry, so one snapshot describes the whole serving process.
* :mod:`repro.obs.trace` — the :class:`Trace` context: every request gets a
  trace id that travels inside the v2 wire envelope (``"trace"`` key) and is
  echoed on the response, so a request can be followed client → service →
  logs without any shared infrastructure.
* :mod:`repro.obs.span` — hierarchical :class:`Span` timing nested under the
  trace: span/parent ids cross process boundaries via the envelope's
  ``"span"`` key, so one cluster request yields one causal tree
  (client → router → worker → engine → batcher → LLM).
* :mod:`repro.obs.events` — a bounded, thread-safe structured event log
  (ring buffer + optional JSONL file sink, deterministic head-based
  sampling by trace id) fed by completed spans and control-plane incidents;
  ``repro trace <id>`` renders its span waterfall.
* :mod:`repro.obs.export` — Prometheus/OpenMetrics text rendering of a
  metrics snapshot plus per-name exemplar trace ids, served from
  ``--stats-port`` via content negotiation.
* :mod:`repro.obs.admission` — load shedding: an
  :class:`AdmissionController` bounds in-flight and queued requests and
  rejects the excess with a structured ``overloaded`` protocol error
  (retry-after hint, queue depth, inflight count) instead of queueing
  unboundedly, plus a :class:`PriorityLock` so higher-priority batches
  dequeue first.
* :mod:`repro.obs.timeseries` — rolling ring-buffer views over the
  registry: windowed counter rates/deltas, gauge stats and histogram
  percentiles over 10s/1m/5m, sampled off the request path.
* :mod:`repro.obs.slo` — declarative latency/error-budget objectives
  (per-service and per-tenant) evaluated with multi-window burn-rate
  rules; a :class:`HealthMonitor` turns them into ``slo.breach`` events,
  an ``alerts`` stats section and ``/healthz`` + ``/readyz`` probes.
* :mod:`repro.obs.diagnostics` — one-shot ``repro doctor`` bundles
  (config, snapshot, rolling windows, alerts, event tail, thread stacks).

Snapshots are exposed end-to-end: the ``stats`` wire type
(:class:`repro.api.stats_spec.StatsSpec`), :meth:`repro.api.Client.stats`,
``python -m repro stats`` and ``serve --stats-port``.  See
``docs/observability.md`` for the metric and span name catalogues.
"""

from .admission import (
    AdmissionController,
    PriorityLock,
    serve_stats_in_thread,
    start_stats_server,
)
from .diagnostics import build_bundle, thread_stacks
from .events import (
    EventLog,
    configure_default_event_log,
    emit_event,
    get_default_event_log,
    render_waterfall,
)
from .export import ExemplarStore, get_default_exemplars, render_prometheus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
)
from .slo import HealthMonitor, SLOEngine, SLOSpec, load_slos
from .span import Span, remote_span, set_tracing, span, tracing_enabled
from .timeseries import DEFAULT_WINDOWS, TimeSeriesSampler, parse_window
from .trace import Trace, new_trace_id

__all__ = [
    "AdmissionController",
    "Counter",
    "DEFAULT_WINDOWS",
    "EventLog",
    "ExemplarStore",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricsRegistry",
    "PriorityLock",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "TimeSeriesSampler",
    "Trace",
    "build_bundle",
    "configure_default_event_log",
    "emit_event",
    "get_default_event_log",
    "get_default_exemplars",
    "get_default_registry",
    "load_slos",
    "new_trace_id",
    "parse_window",
    "remote_span",
    "render_prometheus",
    "render_waterfall",
    "serve_stats_in_thread",
    "set_tracing",
    "span",
    "start_stats_server",
    "thread_stacks",
    "tracing_enabled",
]
