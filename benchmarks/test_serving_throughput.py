"""Benchmark: sequential ``run_many`` vs the batched serving engine.

Two claims are measured on a 50-task Restaurant imputation workload:

1. **Warm-cache speedup with bit-identical output** — a cold sequential run
   warms a persistent completion cache; a fresh pipeline (new process
   equivalent) executed through the concurrent engine against that cache is
   measurably faster and returns exactly the same predictions, traces and
   per-query usage.
2. **Cold micro-batching against a slow backend** — with a latency-bearing
   backend (one round-trip per ``complete_batch`` call, as for a remote API),
   the engine coalesces same-kind prompts across in-flight tasks so the total
   number of round-trips collapses, beating the sequential loop.
"""

import time

from conftest import run_once
from report import write_bench

from repro.core import UniDM, UniDMConfig
from repro.datasets import load_dataset
from repro.llm import CachedLLM, LanguageModel, SimulatedLLM
from repro.serving import EngineConfig, ExecutionEngine, PersistentCache

N_TASKS = 50


class LatencyLLM(LanguageModel):
    """Adds a fixed per-round-trip latency in front of a simulated backend.

    Models a remote completion API: each ``complete``/``complete_batch`` call
    costs one network round-trip regardless of batch size, which is exactly
    what micro-batching amortises.
    """

    def __init__(self, inner: SimulatedLLM, latency: float):
        super().__init__(tokenizer=inner.tokenizer)
        self.inner = inner
        self.latency = latency
        self.name = f"latency({inner.name})"
        self.round_trips = 0

    def _complete_text(self, prompt: str) -> str:
        self.round_trips += 1
        time.sleep(self.latency)
        return self.inner._complete_text(prompt)

    def complete_batch(self, prompts, kind="other"):
        self.round_trips += 1
        time.sleep(self.latency)
        return [
            self._record(prompt, self.inner._complete_text(prompt), kind)
            for prompt in prompts
        ]


def _workload():
    dataset = load_dataset("restaurant", seed=0, n_records=80, n_tasks=N_TASKS)
    assert len(dataset.tasks) == N_TASKS
    return dataset


def _fingerprint(results):
    return [
        (
            r.raw_answer,
            r.value,
            r.context_text,
            r.trace.target_prompt,
            r.usage.calls,
            r.usage.prompt_tokens,
            r.usage.completion_tokens,
        )
        for r in results
    ]


def test_engine_with_warmed_cache_beats_sequential_bitwise(benchmark, tmp_path):
    dataset = _workload()
    store = tmp_path / "completions"

    def fresh_pipeline():
        llm = CachedLLM(
            SimulatedLLM(knowledge=dataset.knowledge, seed=0),
            persistent=PersistentCache(store),
        )
        return UniDM(llm, UniDMConfig.full(seed=0))

    # Cold sequential baseline; warms the persistent cache as it goes.
    sequential_pipeline = fresh_pipeline()
    started = time.perf_counter()
    sequential = [sequential_pipeline.run(task) for task in dataset.tasks]
    t_sequential = time.perf_counter() - started

    # Fresh pipeline (as a new process would build) + concurrent engine over
    # the warmed cache, timed by pytest-benchmark.
    engine = ExecutionEngine(EngineConfig(max_batch_size=8, workers=8))
    warmed_pipeline = fresh_pipeline()
    concurrent = run_once(
        benchmark, lambda: warmed_pipeline.run_many(dataset.tasks, engine=engine)
    )
    t_engine = engine.last_report.elapsed

    assert _fingerprint(concurrent) == _fingerprint(sequential)
    assert warmed_pipeline.llm.hit_rate == 1.0
    assert warmed_pipeline.llm.persistent_hits == engine.last_report.stats.requests
    # "Measurably faster": the warmed engine run must clearly beat the cold
    # sequential loop, not merely edge it out.
    assert t_engine < 0.5 * t_sequential, (
        f"engine {t_engine:.3f}s vs sequential {t_sequential:.3f}s"
    )

    write_bench(
        "serving",
        {
            "workload": {"tasks": N_TASKS, "dataset": "restaurant"},
            "sequential_cold": {"elapsed_s": round(t_sequential, 4)},
            "engine_warm": {
                "elapsed_s": round(t_engine, 4),
                "tasks_per_s": round(engine.last_report.tasks_per_second, 2),
                "llm_requests": engine.last_report.stats.requests,
            },
            "speedup": round(t_sequential / t_engine, 3),
        },
    )


def test_cold_micro_batching_amortises_backend_round_trips(benchmark):
    dataset = _workload()
    latency = 0.002  # 2ms per round-trip

    # Sequential: one round-trip per LLM call.
    seq_llm = LatencyLLM(SimulatedLLM(knowledge=dataset.knowledge, seed=0), latency)
    sequential_pipeline = UniDM(seq_llm, UniDMConfig.full(seed=0))
    started = time.perf_counter()
    sequential = [sequential_pipeline.run(task) for task in dataset.tasks]
    t_sequential = time.perf_counter() - started
    assert seq_llm.round_trips == sum(r.usage.calls for r in sequential)

    # Engine: concurrent tasks coalesce same-kind prompts into shared
    # round-trips.  Ordered retrieval is off — this measures raw throughput,
    # not reproducibility (the cold simulated backend is order-sensitive).
    eng_llm = LatencyLLM(SimulatedLLM(knowledge=dataset.knowledge, seed=0), latency)
    engine_pipeline = UniDM(eng_llm, UniDMConfig.full(seed=0))
    engine = ExecutionEngine(
        EngineConfig(max_batch_size=8, workers=16, ordered_retrieval=False)
    )
    concurrent = run_once(
        benchmark, lambda: engine_pipeline.run_many(dataset.tasks, engine=engine)
    )
    t_engine = engine.last_report.elapsed

    stats = engine.last_report.stats
    assert len(concurrent) == N_TASKS
    assert stats.mean_batch > 1.5, f"no coalescing happened: {stats}"
    assert eng_llm.round_trips == stats.batches
    assert eng_llm.round_trips < seq_llm.round_trips
    assert t_engine < t_sequential, (
        f"engine {t_engine:.3f}s vs sequential {t_sequential:.3f}s"
    )

    write_bench(
        "batching",
        {
            "workload": {"tasks": N_TASKS, "backend_latency_s": latency},
            "sequential": {
                "elapsed_s": round(t_sequential, 4),
                "round_trips": seq_llm.round_trips,
            },
            "engine": {
                "elapsed_s": round(t_engine, 4),
                "round_trips": eng_llm.round_trips,
                "mean_batch": round(stats.mean_batch, 3),
            },
            "round_trip_reduction": round(seq_llm.round_trips / eng_llm.round_trips, 3),
        },
    )
