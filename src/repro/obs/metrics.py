"""Dependency-free, thread-safe metrics primitives.

Three metric kinds cover everything the serving stack needs to report:

* :class:`Counter` — a monotonically increasing total (requests served,
  cache hits, specs shed);
* :class:`Gauge` — a value that goes up and down (tasks in flight, queue
  depth), remembering its high-water mark;
* :class:`Histogram` — a **fixed-bucket** latency/size distribution.  An
  observation is one lock-protected bucket increment; a snapshot reports
  count, sum, min, max and p50/p95/p99 estimated by linear interpolation
  inside the owning bucket (the classic Prometheus-style estimate: exact
  bucket counts, approximate quantiles, O(buckets) memory forever).

All three hang off a :class:`MetricsRegistry`, which creates metrics on
first use (``registry.counter("cache.hits").inc()``) so instrumentation
never needs declaration ceremony.  Names are dotted paths; dynamic label
segments go last (``router.routed.worker-00``).  A process-default registry
(:func:`get_default_registry`) is what the serving stack instruments against
— one ``snapshot()`` describes the whole process — while tests and embedded
deployments can pass their own registry for isolation.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Mapping, Sequence

#: Default latency buckets (seconds): sub-millisecond to ten seconds.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default size buckets (counts): micro-batch sizes, queue depths.
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """A monotonically increasing total."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def to_payload(self) -> int:
        return self.value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that can go up and down, with a high-water mark."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._high = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._high = max(self._high, value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount
            self._high = max(self._high, self._value)

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def high_water(self) -> float:
        with self._lock:
            return self._high

    def to_payload(self) -> dict[str, float]:
        with self._lock:
            return {"value": self._value, "high_water": self._high}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._high = 0.0


class Histogram:
    """Fixed-bucket distribution with percentile snapshots.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket (``+inf``) is always appended.  Quantiles are estimated
    by walking the cumulative bucket counts and interpolating linearly
    inside the bucket holding the target rank — exact when observations are
    uniform within a bucket, and never off by more than one bucket width.
    """

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, non-empty sequence")
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == len(self.bounds):
                    # Overflow (+Inf) bucket: there is no finite upper edge to
                    # interpolate against, so report the observed maximum
                    # rather than inventing a value near the top finite edge.
                    return self._max
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                # Clamp the interpolation window to what was actually seen,
                # so small samples don't report a bucket edge nobody hit.
                lower = max(lower, self._min if self._min is not math.inf else lower)
                upper = min(upper, self._max if self._max is not -math.inf else upper)
                if upper <= lower:
                    return upper
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self._max  # pragma: no cover - unreachable with count > 0

    def to_payload(self) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "count": self._count,
                "sum": round(self._sum, 9),
                "min": round(self._min, 9) if self._count else 0.0,
                "max": round(self._max, 9) if self._count else 0.0,
                "p50": round(self._quantile_locked(0.50), 9),
                "p95": round(self._quantile_locked(0.95), 9),
                "p99": round(self._quantile_locked(0.99), 9),
            }
            buckets: dict[str, int] = {}
            for bound, bucket_count in zip(self.bounds, self._counts):
                if bucket_count:
                    buckets[f"le_{bound:g}"] = bucket_count
            if self._count:
                # The +Inf overflow bucket is always explicit on non-empty
                # histograms, so readers can tell "no overflow" from
                # "overflow not reported".
                buckets["le_inf"] = self._counts[-1]
            payload["buckets"] = buckets
            return payload

    def bucket_counts(self) -> tuple[tuple[int, ...], int, float]:
        """One consistent ``(counts, count, sum)`` view of the distribution.

        ``counts`` includes the trailing overflow bucket and is read under
        the histogram lock, so the tuple is never torn against a concurrent
        :meth:`observe` — the contract the rolling time-series layer
        (:mod:`repro.obs.timeseries`) samples against.
        """
        with self._lock:
            return tuple(self._counts), self._count, self._sum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """Creates-on-first-use store of named metrics; snapshot is plain JSON."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, factory) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested as {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    # ------------------------------------------------------------- reporting
    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        """One JSON-able view of every metric (optionally name-filtered)."""
        with self._lock:
            metrics = {
                name: metric
                for name, metric in sorted(self._metrics.items())
                if name.startswith(prefix)
            }
        counters: dict[str, int] = {}
        gauges: dict[str, dict[str, float]] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for name, metric in metrics.items():
            if isinstance(metric, Counter):
                counters[name] = metric.to_payload()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.to_payload()
            else:
                histograms[name] = metric.to_payload()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def items(self, prefix: str = "") -> "list[tuple[str, Counter | Gauge | Histogram]]":
        """The live metric objects (optionally name-filtered), sorted by name.

        Unlike :meth:`snapshot` this hands out the objects themselves — the
        time-series sampler reads them directly so one sampling pass costs
        one small lock per metric instead of a full payload render.
        """
        with self._lock:
            return [
                (name, metric)
                for name, metric in sorted(self._metrics.items())
                if name.startswith(prefix)
            ]

    def counter_values(self, prefix: str = "") -> Mapping[str, int]:
        """Just the counter totals (convenient for assertions and CLIs)."""
        snap = self.snapshot(prefix)
        return snap["counters"]

    def reset(self) -> None:
        """Zero every metric **in place** (benchmarks, ``stats --reset``).

        Metric objects survive: components cache handles at construction
        (``self._m_hits = registry.counter(...)``), so dropping entries from
        the dict would silently disconnect them.  Zeroing keeps every cached
        handle live while isolating per-run numbers.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


#: The registry the serving stack instruments against by default.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The process-wide default registry (one snapshot per process)."""
    return _DEFAULT_REGISTRY


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "get_default_registry",
]
