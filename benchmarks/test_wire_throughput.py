"""Benchmark: pipelined negotiated transport vs thread-per-connection lines.

The transport acceptance claim: at 64 in-flight requests, the per-request
round-trip overhead of one pooled, binary-framed, multiplexed connection
must be at least **2x lower** than the legacy usage pattern — one
connection per request, JSON line + blank-line flush, one thread per
connection on the client.

Both arms talk to the *same* asyncio wire server over a no-op echo handler,
so the measured difference is pure transport: connect/teardown amortization,
frame encoding, and request pipelining (all 64 requests are on the wire
before the first response is read) versus 64 sequential connect-send-recv
round trips racing on 64 threads.

Results land in ``BENCH_wire.json``; ``scripts/check_bench.py`` gates the
``overhead_reduction`` ratio (within-run, so CI runner speed cannot fail
the gate).
"""

import asyncio
import json
import socket
import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import run_once
from report import write_bench

from repro.serving.transport import (
    AsyncWireConnection,
    WireConnection,
    start_wire_server,
)

#: Concurrent requests per round — the acceptance point of the 2x claim.
IN_FLIGHT = 64
#: Timing rounds per arm; the median round sheds scheduler noise.
ROUNDS = 9
#: The gated ratio is clamped here: the raw reduction routinely lands far
#: above the 2x acceptance claim (8-12x on an idle machine) but with high
#: run-to-run variance, and a regression floor tracking a lucky high-water
#: baseline would flake.  Clamping keeps the committed baseline — and so
#: the check_bench floor — pinned just above the claim being protected.
GATE_CLAMP = 4.0


def _echo_handler(requests):
    """Zero-work batch handler: the wire is the only cost being measured."""
    return [
        {"v": 2, "id": request.get("id"), "ok": True, "result": {"answer": "pong"}}
        for request in requests
    ]


def _start_server():
    """The wire server on a daemon loop thread; returns (port, stop)."""
    ready = threading.Event()
    holder = {}
    loop = asyncio.new_event_loop()

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(start_wire_server(_echo_handler, port=0))
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()
        server.close()
        loop.run_until_complete(server.wait_closed())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "wire server did not start"

    def stop() -> None:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)

    return holder["port"], stop


def _one_legacy_round_trip(port: int, request_id: int) -> dict:
    """The pre-transport pattern: fresh connection, one line, blank flush."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        line = json.dumps({"v": 2, "id": request_id, "task": {"type": "noop"}})
        sock.sendall(line.encode() + b"\n\n")
        reply = sock.makefile("r").readline()
    return json.loads(reply)


def _baseline_round(port: int, executor: ThreadPoolExecutor) -> float:
    """64 threads x (connect + 1 JSON-lines request + close); wall seconds."""
    started = time.perf_counter()
    futures = [
        executor.submit(_one_legacy_round_trip, port, i) for i in range(IN_FLIGHT)
    ]
    responses = [future.result() for future in futures]
    elapsed = time.perf_counter() - started
    assert len(responses) == IN_FLIGHT
    assert all(isinstance(r.get("id"), int) for r in responses)
    return elapsed


def _pipelined_round(conn: WireConnection) -> float:
    """64 in-flight requests on one negotiated binary connection; wall seconds."""
    requests = [
        {"v": 2, "id": i, "task": {"type": "noop"}} for i in range(IN_FLIGHT)
    ]
    started = time.perf_counter()
    responses = conn.send_batch(requests)
    elapsed = time.perf_counter() - started
    assert [r["id"] for r in responses] == list(range(IN_FLIGHT))
    return elapsed


async def _async_round(port: int) -> float:
    """The streaming asyncio client arm, reported for context (not gated)."""
    conn = await AsyncWireConnection.open("127.0.0.1", port, timeout=30)
    try:
        requests = [
            {"v": 2, "id": i, "task": {"type": "noop"}} for i in range(IN_FLIGHT)
        ]
        started = time.perf_counter()
        responses = await conn.send_batch(requests)
        elapsed = time.perf_counter() - started
        assert [r["id"] for r in responses] == list(range(IN_FLIGHT))
        return elapsed
    finally:
        await conn.close()


def test_pipelined_halves_per_request_overhead(benchmark):
    port, stop = _start_server()
    executor = ThreadPoolExecutor(max_workers=IN_FLIGHT)
    conn = WireConnection.open("127.0.0.1", port, timeout=30)
    try:
        assert conn.mode == "bin", "binary framing did not negotiate"

        # Warm both arms: thread pool spin-up and first-frame costs are
        # one-time, not per-request overhead.
        _baseline_round(port, executor)
        _pipelined_round(conn)

        baseline_s = statistics.median(
            _baseline_round(port, executor) for _ in range(ROUNDS)
        )
        outcome = {}

        def pipelined() -> float:
            outcome["elapsed"] = statistics.median(
                _pipelined_round(conn) for _ in range(ROUNDS)
            )
            return outcome["elapsed"]

        run_once(benchmark, pipelined)
        pipelined_s = outcome["elapsed"]
        async_s = asyncio.run(_async_round(port))

        baseline_per = baseline_s / IN_FLIGHT
        pipelined_per = pipelined_s / IN_FLIGHT
        reduction = baseline_per / pipelined_per
        # The acceptance claim: >= 2x lower per-request overhead at 64 in-flight.
        assert reduction >= 2.0, (
            f"pipelined {pipelined_per * 1e6:.0f}us/req vs thread-per-connection "
            f"{baseline_per * 1e6:.0f}us/req — only {reduction:.2f}x lower"
        )

        write_bench(
            "wire",
            {
                "in_flight": IN_FLIGHT,
                "rounds": ROUNDS,
                "handler": "echo (zero work — pure transport cost)",
                "baseline_thread_per_connection": {
                    "elapsed_s": round(baseline_s, 5),
                    "per_request_us": round(baseline_per * 1e6, 1),
                },
                "pipelined_binary": {
                    "frame": conn.mode,
                    "elapsed_s": round(pipelined_s, 5),
                    "per_request_us": round(pipelined_per * 1e6, 1),
                },
                "async_streaming": {
                    "elapsed_s": round(async_s, 5),
                    "per_request_us": round(async_s / IN_FLIGHT * 1e6, 1),
                },
                "overhead_reduction_raw": round(reduction, 3),
                "overhead_reduction": round(min(reduction, GATE_CLAMP), 3),
            },
        )
    finally:
        conn.close()
        executor.shutdown(wait=False)
        stop()
