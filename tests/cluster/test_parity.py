"""Parity: cluster execution is bit-identical to a single engine.

The ordered-retrieval determinism contract of the serving engine says that
whenever execution is a pure function of each task (a warmed cache, or a
backend + config with no call-order state — see
``repro/serving/engine.py``), results are bit-identical at any batch size
and worker count.  The cluster extends that guarantee across shards, and
these tests enforce it three ways:

1. cluster ``submit_many`` ≡ single-engine ``Client.local`` ``submit_many``
   ≡ sequential ``UniDM.run_many`` over the same mixed workload;
2. a restarted cluster re-opens its per-worker persistent shards and
   reproduces the first run bit-for-bit *without a single LLM miss*
   (affinity across restarts);
3. ``CachedLLM`` statistics stay consistent under the router (the satellite
   regression: counters add up per shard and in aggregate).
"""

from cluster_testing import RNG_FREE, PromptPureLLM, fingerprint, make_mixed_specs

from repro.api import Client
from repro.api.results import TaskResult
from repro.core import UniDM
from repro.datasets import load_dataset


def test_cluster_matches_single_engine_bitwise(mixed_specs):
    with Client.local(llm=PromptPureLLM(), config=RNG_FREE) as local:
        single_engine = local.submit_many(mixed_specs)
    sequential_pipeline = UniDM(PromptPureLLM(), RNG_FREE)
    sequential = [
        TaskResult.from_manipulation(result)
        for result in sequential_pipeline.run_many(
            [spec.to_task() for spec in mixed_specs]
        )
    ]
    for n_workers in (2, 3, 5):
        with Client.cluster(
            workers=n_workers,
            llm_factory=lambda i: PromptPureLLM(),
            config=RNG_FREE,
        ) as cluster:
            sharded = cluster.submit_many(mixed_specs)
            spread = {
                row.worker_id for row in cluster.router.stats().workers if row.routed
            }
        assert fingerprint(sharded) == fingerprint(single_engine), n_workers
        assert fingerprint(sharded) == fingerprint(sequential), n_workers
        assert len(spread) > 1, "workload landed on a single shard"


def test_restarted_cluster_replays_from_disjoint_shards(tmp_path):
    specs = make_mixed_specs(3)
    cache_dir = str(tmp_path / "shards")

    def build():
        return Client.cluster(
            workers=3,
            llm_factory=lambda i: PromptPureLLM(),
            config=RNG_FREE,
            cache_dir=cache_dir,
        )

    with build() as cold:
        first = cold.submit_many(specs)
        cold_rows = cold.router.stats().workers
        assert sum(row.cache_misses for row in cold_rows) > 0
        # Every worker persisted its own shard directory, and only workers
        # that actually routed specs wrote anything (spec-level ownership;
        # distinct specs may still share the odd sub-prompt across shards).
        for row in cold_rows:
            shard_files = list((tmp_path / "shards" / row.worker_id).glob("shard-*.jsonl"))
            if row.routed:
                assert shard_files, f"{row.worker_id} routed specs but wrote no shard"
            else:
                assert not shard_files, f"{row.worker_id} wrote a shard without work"

    with build() as warm:
        second = warm.submit_many(specs)
        warm_rows = warm.router.stats().workers
    assert fingerprint(second) == fingerprint(first)
    # Every prompt of the rerun came out of a re-opened persistent shard.
    assert sum(row.cache_misses for row in warm_rows) == 0
    assert sum(row.persistent_hits for row in warm_rows) > 0


def test_cached_llm_stats_stay_consistent_under_router(mixed_specs):
    """Satellite regression: per-shard cache counters add up under routing."""
    with Client.cluster(
        workers=3, llm_factory=lambda i: PromptPureLLM(), config=RNG_FREE
    ) as client:
        client.submit_many(mixed_specs)
        first = client.router.stats()
        client.submit_many(mixed_specs)
        second = client.router.stats()

    # Aggregates are exactly the per-worker sums.
    for snapshot in (first, second):
        assert snapshot.cache_hits == sum(r.cache_hits for r in snapshot.workers)
        assert snapshot.cache_misses == sum(r.cache_misses for r in snapshot.workers)
    # The rerun re-issued the same prompts: misses frozen, hits grew by
    # exactly the number of prompts the first run looked up per shard.
    assert second.cache_misses == first.cache_misses
    by_id_first = {r.worker_id: r for r in first.workers}
    for row in second.workers:
        cold = by_id_first[row.worker_id]
        assert row.cache_hits - cold.cache_hits == cold.cache_hits + cold.cache_misses
        assert 0.0 <= row.hit_rate <= 1.0


def test_cluster_parity_on_dataset_imputation_workload():
    """End-to-end: dataset imputation specs, cluster vs single engine."""
    from repro.api import ImputationSpec

    dataset = load_dataset("restaurant", seed=0, n_records=40, n_tasks=8)
    rows = dataset.table.to_dicts()
    specs = [
        ImputationSpec(rows=rows, target=task.record.to_dict(), attribute=task.attribute)
        for task in dataset.tasks
    ]
    with Client.local(llm=PromptPureLLM(), config=RNG_FREE) as local:
        expected = local.submit_many(specs)
    with Client.cluster(
        workers=4, llm_factory=lambda i: PromptPureLLM(), config=RNG_FREE
    ) as cluster:
        observed = cluster.submit_many(specs)
    assert fingerprint(observed) == fingerprint(expected)
