"""A library of string-transformation operators.

This substrate plays two roles in the reproduction:

* it powers the **TDE baseline** (Transform-Data-by-Example, He et al. 2018),
  which searches this operator library for a program consistent with the given
  input/output examples; and
* the **simulated LLM** uses the same library to model an LLM's ability to
  infer "format A -> format B" mappings from in-context demonstrations, so
  that data-transformation accuracy emerges from whether the transformation is
  actually expressible/learnable rather than from a hard-coded number.

Each operator is a small, deterministic, total function on strings that either
returns the transformed string or ``None`` when it does not apply.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

TransformFn = Callable[[str], Optional[str]]

_MONTHS = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]
_MONTH_FULL = [
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
]

_ROMAN = {
    "I": 1, "II": 2, "III": 3, "IV": 4, "V": 5, "VI": 6, "VII": 7,
    "VIII": 8, "IX": 9, "X": 10, "XI": 11, "XII": 12, "XIII": 13,
    "XIV": 14, "XV": 15, "XVI": 16, "XVII": 17, "XVIII": 18, "XIX": 19,
    "XX": 20,
}


@dataclass(frozen=True)
class TransformOperator:
    """A named, parameter-free string transformation."""

    name: str
    fn: TransformFn
    description: str = ""

    def __call__(self, value: str) -> Optional[str]:
        try:
            return self.fn(str(value))
        except (ValueError, IndexError, KeyError):
            return None


# -- date formats ------------------------------------------------------------

def _parse_compact_date(value: str) -> Optional[tuple[int, int, int]]:
    m = re.fullmatch(r"(\d{4})(\d{2})(\d{2})", value.strip())
    if not m:
        return None
    year, month, day = int(m.group(1)), int(m.group(2)), int(m.group(3))
    if not (1 <= month <= 12 and 1 <= day <= 31):
        return None
    return year, month, day


def compact_date_to_iso(value: str) -> Optional[str]:
    parsed = _parse_compact_date(value)
    if parsed is None:
        return None
    y, m, d = parsed
    return f"{y:04d}-{m:02d}-{d:02d}"


def compact_date_to_readable(value: str) -> Optional[str]:
    parsed = _parse_compact_date(value)
    if parsed is None:
        return None
    y, m, d = parsed
    return f"{_MONTHS[m - 1]} {d:02d} {y:04d}"


def iso_date_to_us(value: str) -> Optional[str]:
    m = re.fullmatch(r"(\d{4})-(\d{2})-(\d{2})", value.strip())
    if not m:
        return None
    return f"{int(m.group(2)):02d}/{int(m.group(3)):02d}/{m.group(1)}"


def us_date_to_iso(value: str) -> Optional[str]:
    m = re.fullmatch(r"(\d{1,2})/(\d{1,2})/(\d{4})", value.strip())
    if not m:
        return None
    return f"{m.group(3)}-{int(m.group(1)):02d}-{int(m.group(2)):02d}"


def iso_date_to_long(value: str) -> Optional[str]:
    m = re.fullmatch(r"(\d{4})-(\d{2})-(\d{2})", value.strip())
    if not m:
        return None
    month = int(m.group(2))
    if not 1 <= month <= 12:
        return None
    return f"{_MONTH_FULL[month - 1]} {int(m.group(3))}, {m.group(1)}"


# -- phone numbers -------------------------------------------------------------

def digits_to_dashed_phone(value: str) -> Optional[str]:
    digits = re.sub(r"\D", "", value)
    if len(digits) != 10:
        return None
    return f"{digits[0:3]}-{digits[3:6]}-{digits[6:10]}"


def digits_to_paren_phone(value: str) -> Optional[str]:
    digits = re.sub(r"\D", "", value)
    if len(digits) != 10:
        return None
    return f"({digits[0:3]}) {digits[3:6]}-{digits[6:10]}"


def phone_strip_to_digits(value: str) -> Optional[str]:
    digits = re.sub(r"\D", "", value)
    if len(digits) != 10:
        return None
    return digits


# -- casing / whitespace -------------------------------------------------------

def to_upper(value: str) -> Optional[str]:
    return value.upper()


def to_lower(value: str) -> Optional[str]:
    return value.lower()


def to_title(value: str) -> Optional[str]:
    return value.title()


def strip_whitespace(value: str) -> Optional[str]:
    return value.strip()


def collapse_spaces(value: str) -> Optional[str]:
    return re.sub(r"\s+", " ", value).strip()


def snake_to_camel(value: str) -> Optional[str]:
    parts = value.strip().split("_")
    if len(parts) < 2:
        return None
    return parts[0].lower() + "".join(p.title() for p in parts[1:])


def camel_to_snake(value: str) -> Optional[str]:
    if "_" in value or " " in value or value == value.lower():
        return None
    return re.sub(r"(?<!^)(?=[A-Z])", "_", value).lower()


def spaces_to_underscores(value: str) -> Optional[str]:
    if " " not in value:
        return None
    return value.strip().replace(" ", "_")


# -- numbers / units ------------------------------------------------------------

def roman_to_arabic(value: str) -> Optional[str]:
    key = value.strip().upper()
    if key not in _ROMAN:
        return None
    return str(_ROMAN[key])


def arabic_to_roman(value: str) -> Optional[str]:
    try:
        number = int(value.strip())
    except ValueError:
        return None
    inverse = {v: k for k, v in _ROMAN.items()}
    return inverse.get(number)


def add_thousands_separator(value: str) -> Optional[str]:
    m = re.fullmatch(r"\d+", value.strip())
    if not m:
        return None
    return f"{int(value):,}"


def strip_thousands_separator(value: str) -> Optional[str]:
    if "," not in value:
        return None
    cleaned = value.replace(",", "").strip()
    return cleaned if re.fullmatch(r"\d+", cleaned) else None


def cents_to_dollars(value: str) -> Optional[str]:
    m = re.fullmatch(r"\d+", value.strip())
    if not m:
        return None
    return f"${int(value) / 100:.2f}"


def number_to_percent(value: str) -> Optional[str]:
    m = re.fullmatch(r"0?\.\d+", value.strip())
    if not m:
        return None
    return f"{float(value) * 100:.1f}%"


# -- addresses / names / web -----------------------------------------------------

def extract_domain(value: str) -> Optional[str]:
    m = re.search(r"(?:https?://)?(?:www\.)?([A-Za-z0-9.-]+\.[A-Za-z]{2,})", value)
    if not m:
        return None
    return m.group(1).lower()


def extract_zipcode(value: str) -> Optional[str]:
    m = re.search(r"\b(\d{5})(?:-\d{4})?\b", value)
    if not m:
        return None
    return m.group(1)


def last_name_first(value: str) -> Optional[str]:
    parts = value.strip().split()
    if len(parts) != 2:
        return None
    return f"{parts[1]}, {parts[0]}"


def first_name_initial(value: str) -> Optional[str]:
    parts = value.strip().split()
    if len(parts) != 2:
        return None
    return f"{parts[0][0]}. {parts[1]}"


def extract_state_abbrev(value: str) -> Optional[str]:
    m = re.search(r"\b([A-Z]{2})\b(?:\s+\d{5})?$", value.strip())
    if not m:
        return None
    return m.group(1)


def ip_to_dotted_padded(value: str) -> Optional[str]:
    parts = value.strip().split(".")
    if len(parts) != 4 or not all(p.isdigit() and int(p) <= 255 for p in parts):
        return None
    return ".".join(f"{int(p):03d}" for p in parts)


def padded_ip_to_plain(value: str) -> Optional[str]:
    parts = value.strip().split(".")
    if len(parts) != 4 or not all(p.isdigit() and len(p) == 3 for p in parts):
        return None
    return ".".join(str(int(p)) for p in parts)


def extract_file_extension(value: str) -> Optional[str]:
    m = re.search(r"\.([A-Za-z0-9]{1,5})$", value.strip())
    if not m:
        return None
    return m.group(1).lower()


def extract_year(value: str) -> Optional[str]:
    m = re.search(r"\b(19\d{2}|20\d{2})\b", value)
    if not m:
        return None
    return m.group(1)


def seconds_to_hms(value: str) -> Optional[str]:
    m = re.fullmatch(r"\d+", value.strip())
    if not m:
        return None
    total = int(value)
    return f"{total // 3600:02d}:{(total % 3600) // 60:02d}:{total % 60:02d}"


#: The full operator library, in a stable order used by the program search.
OPERATOR_LIBRARY: tuple[TransformOperator, ...] = tuple(
    TransformOperator(name=fn.__name__, fn=fn, description=(fn.__doc__ or "").strip())
    for fn in (
        compact_date_to_iso,
        compact_date_to_readable,
        iso_date_to_us,
        us_date_to_iso,
        iso_date_to_long,
        digits_to_dashed_phone,
        digits_to_paren_phone,
        phone_strip_to_digits,
        to_upper,
        to_lower,
        to_title,
        strip_whitespace,
        collapse_spaces,
        snake_to_camel,
        camel_to_snake,
        spaces_to_underscores,
        roman_to_arabic,
        arabic_to_roman,
        add_thousands_separator,
        strip_thousands_separator,
        cents_to_dollars,
        number_to_percent,
        extract_domain,
        extract_zipcode,
        last_name_first,
        first_name_initial,
        extract_state_abbrev,
        ip_to_dotted_padded,
        padded_ip_to_plain,
        extract_file_extension,
        extract_year,
        seconds_to_hms,
    )
)

OPERATORS_BY_NAME: dict[str, TransformOperator] = {
    op.name: op for op in OPERATOR_LIBRARY
}
