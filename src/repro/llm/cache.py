"""A caching wrapper around any language model.

Production pipelines over data lakes re-issue many identical prompts (e.g. the
same metadata-retrieval prompt for every record of a column); caching them cuts
cost and makes reruns deterministic.  The wrapper preserves the
:class:`~repro.llm.base.LanguageModel` interface, so it can be dropped in front
of the simulated model or a real API client alike.

The wrapper is thread-safe: the serving engine's micro-batcher executes
batches on worker threads, so lookups, inner-model calls and usage recording
all happen under one re-entrant lock.  An optional *persistent* backend (see
:class:`~repro.serving.cache.PersistentCache`) spills completions to disk so
that a warmed cache survives across processes; any object with
``get(prompt) -> str | None`` and ``put(prompt, text)`` works.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Protocol, Sequence, runtime_checkable

from ..obs.metrics import MetricsRegistry, get_default_registry
from ..obs.span import span
from .base import Completion, LanguageModel


@runtime_checkable
class CacheBackend(Protocol):
    """Duck type of a persistent completion store."""

    def get(self, prompt: str) -> str | None: ...

    def put(self, prompt: str, text: str) -> None: ...


class CachedLLM(LanguageModel):
    """LRU-cached view of an inner language model.

    Cache hits are counted and do **not** add to the inner model's usage, but
    they do add to this wrapper's usage tracker so experiments can report both
    "tokens billed" (inner) and "tokens requested" (wrapper).
    """

    def __init__(
        self,
        inner: LanguageModel,
        max_entries: int = 10_000,
        persistent: CacheBackend | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        super().__init__(tokenizer=inner.tokenizer)
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.inner = inner
        self.max_entries = max_entries
        self.persistent = persistent
        self.name = f"cached({inner.name})"
        metrics = metrics or get_default_registry()
        # Metric handles resolved once: lookups are the hottest path in the
        # stack, so they must not take the registry lock per observation.
        self._m_hits = metrics.counter("cache.hits")
        self._m_misses = metrics.counter("cache.misses")
        self._m_persistent_hits = metrics.counter("cache.persistent_hits")
        self._m_bytes_served = metrics.counter("cache.bytes_served")
        self._m_bytes_stored = metrics.counter("cache.bytes_stored")
        # Prompts actually forwarded to the inner backend (cache hits never
        # count): the exactly-once signal elasticity tests assert on.
        self._m_backend_calls = metrics.counter("llm.calls")
        self.hits = 0
        self.misses = 0
        self.persistent_hits = 0
        self._cache: OrderedDict[str, str] = OrderedDict()
        # Re-entrant so that complete() -> _lookup()/_store() nests safely and
        # the whole lookup-or-compute is one critical section: concurrent
        # callers never compute the same prompt twice.  The lock is held
        # across the inner-model call, so traffic through one wrapper is
        # serialized — exact-once semantics traded against backend
        # parallelism, which the offline simulated backend cannot use anyway.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ lookup
    def _note_hit(self, text: str, persistent: bool = False) -> None:
        self.hits += 1
        self._m_hits.inc()
        self._m_bytes_served.inc(len(text))
        if persistent:
            self.persistent_hits += 1
            self._m_persistent_hits.inc()

    def _lookup(self, prompt: str) -> str | None:
        """Memory then persistent lookup; updates hit/miss counters."""
        if prompt in self._cache:
            self._cache.move_to_end(prompt)
            text = self._cache[prompt]
            self._note_hit(text)
            return text
        if self.persistent is not None:
            text = self.persistent.get(prompt)
            if text is not None:
                self._note_hit(text, persistent=True)
                self._remember(prompt, text)
                return text
        self.misses += 1
        self._m_misses.inc()
        return None

    def _remember(self, prompt: str, text: str) -> None:
        self._cache[prompt] = text
        self._cache.move_to_end(prompt)
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)

    def _store(self, prompt: str, text: str) -> None:
        self._remember(prompt, text)
        self._m_bytes_stored.inc(len(text))
        if self.persistent is not None:
            self.persistent.put(prompt, text)

    def note_route(self, prompt: str, route: str) -> None:
        """Attribute ``prompt`` to a spec (route) key for shard migration.

        Forwards to the persistent backend's route index when it keeps one
        (see :meth:`repro.serving.cache.PersistentCache.note_route`);
        silently a no-op otherwise, so callers need not care which backend
        is wired in.
        """
        note = getattr(self.persistent, "note_route", None)
        if note is not None:
            note(prompt, route)

    # --------------------------------------------------------------- interface
    def _complete_text(self, prompt: str) -> str:
        # Retained for the LanguageModel contract; ``kind`` is unavailable at
        # this layer so the overridden complete()/complete_batch() are the
        # real entry points.
        with self._lock:
            text = self._lookup(prompt)
            if text is None:
                self._m_backend_calls.inc()
                text = self.inner.complete(prompt).text
                self._store(prompt, text)
            return text

    def complete(self, prompt: str, kind: str = "other") -> Completion:
        with self._lock:
            text = self._lookup(prompt)
            if text is None:
                self._m_backend_calls.inc()
                text = self.inner.complete(prompt, kind=kind).text
                self._store(prompt, text)
            return self._record(prompt, text, kind)

    def complete_batch(
        self, prompts: Sequence[str], kind: str = "other"
    ) -> list[Completion]:
        """Serve a micro-batch, forwarding only first-seen misses to the inner model.

        Mirrors the sequential semantics exactly: a prompt repeated within one
        batch is a miss on first occurrence and a hit afterwards, so usage
        accounting is identical whether the prompts arrive one by one or
        coalesced.
        """
        with self._lock:
            texts: list[str | None] = []
            miss_order: list[str] = []
            pending: set[str] = set()
            with span("cache.lookup", prompts=len(prompts)) as lookup_span:
                for prompt in prompts:
                    if prompt in pending:
                        # Served by the in-flight miss ahead of it in this
                        # batch — sequentially this occurrence would have
                        # been a hit.
                        self.hits += 1
                        self._m_hits.inc()
                        texts.append(None)
                        continue
                    text = self._lookup(prompt)
                    texts.append(text)
                    if text is None:
                        pending.add(prompt)
                        miss_order.append(prompt)
                if lookup_span is not None:
                    lookup_span.attrs["misses"] = len(miss_order)
            fetched_texts: dict[str, str] = {}
            if miss_order:
                self._m_backend_calls.inc(len(miss_order))
                with span("llm.backend", kind=kind, prompts=len(miss_order)):
                    fetched = self.inner.complete_batch(miss_order, kind=kind)
                for prompt, completion in zip(miss_order, fetched):
                    fetched_texts[prompt] = completion.text
                    self._store(prompt, completion.text)
            # Resolve misses from the fetched results, not the LRU: storing a
            # large batch can already have evicted its own earliest entries.
            return [
                self._record(
                    prompt,
                    text if text is not None else fetched_texts[prompt],
                    kind,
                )
                for prompt, text in zip(prompts, texts)
            ]

    # --------------------------------------------------------------- statistics
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop the in-memory cache and counters (the persistent store survives)."""
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
            self.persistent_hits = 0
