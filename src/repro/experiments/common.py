"""Shared plumbing for the experiment modules (one per paper table/figure).

Every experiment builds its benchmark dataset(s), instantiates the methods it
compares (UniDM variants, FM variants, traditional baselines), runs the
evaluation harness and returns plain row dicts that the reporting helpers
format as the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.config import UniDMConfig
from ..core.pipeline import UniDM
from ..core.tasks.base import Task
from ..datasets.base import BenchmarkDataset
from ..llm.base import LanguageModel
from ..llm.profiles import DEFAULT_MODEL
from ..llm.simulated import SimulatedLLM
from ..baselines.fm import FMMethod


@dataclass
class UniDMMethod:
    """Per-task method wrapper around the UniDM pipeline (for the harness)."""

    llm: LanguageModel
    config: UniDMConfig
    name: str = "UniDM"

    def __post_init__(self) -> None:
        self.pipeline = UniDM(self.llm, self.config)

    def solve(self, task: Task) -> Any:
        return self.pipeline.run(task).value

    def run(self, task: Task):
        """Full pipeline result (prompt trace + usage), not just the value."""
        return self.pipeline.run(task)


def make_llm(
    dataset: BenchmarkDataset,
    model: str = DEFAULT_MODEL,
    seed: int = 0,
) -> SimulatedLLM:
    """A simulated LLM wired to the dataset's world knowledge."""
    return SimulatedLLM(profile=model, knowledge=dataset.knowledge, seed=seed)


def make_unidm(
    dataset: BenchmarkDataset,
    config: UniDMConfig | None = None,
    model: str = DEFAULT_MODEL,
    seed: int = 0,
    name: str = "UniDM",
) -> UniDMMethod:
    """UniDM pipeline method over a fresh simulated LLM for this dataset."""
    return UniDMMethod(
        llm=make_llm(dataset, model=model, seed=seed),
        config=config or UniDMConfig.full(seed=seed),
        name=name,
    )


def make_fm(
    dataset: BenchmarkDataset,
    context_mode: str = "manual",
    model: str = DEFAULT_MODEL,
    seed: int = 0,
    name: str | None = None,
) -> FMMethod:
    """FM baseline method over a fresh simulated LLM for this dataset."""
    return FMMethod(
        llm=make_llm(dataset, model=model, seed=seed),
        context_mode=context_mode,
        er_examples=dataset.train_pairs,
        seed=seed,
        name=name,
    )


def result_row(result, method: str | None = None, **extra: Any) -> dict[str, Any]:
    """Flatten an EvaluationResult into a reporting row."""
    row: dict[str, Any] = {
        "method": method or result.method,
        "dataset": result.dataset,
        "metric": result.metric_name,
        "score": result.score_percent,
        "n_tasks": result.n_tasks,
    }
    row.update(extra)
    return row
