"""Unit tests for the Restaurant and Buy imputation benchmarks."""

from repro.core import ImputationTask, TaskType
from repro.datalake import is_missing


def test_restaurant_schema_and_tasks(restaurant_dataset):
    assert restaurant_dataset.task_type is TaskType.DATA_IMPUTATION
    table = restaurant_dataset.table
    assert table.schema.names == ["name", "addr", "phone", "type", "city"]
    assert table.schema.primary_key().name == "name"
    assert all(isinstance(t, ImputationTask) for t in restaurant_dataset.tasks)
    assert all(t.attribute == "city" for t in restaurant_dataset.tasks)


def test_restaurant_task_cells_are_masked(restaurant_dataset):
    for task, truth in zip(restaurant_dataset.tasks, restaurant_dataset.ground_truth):
        assert is_missing(task.record["city"])
        assert truth  # ground truth retained separately


def test_restaurant_knowledge_covers_entities(restaurant_dataset):
    knowledge = restaurant_dataset.knowledge
    for task, truth in list(zip(restaurant_dataset.tasks, restaurant_dataset.ground_truth))[:5]:
        fact = knowledge.lookup(task.entity_key(), "city")
        assert fact is not None
        assert fact.value == truth
        assert 0.0 < fact.prevalence <= 1.0
    assert knowledge.attribute_link("addr", "city") > 0.5


def test_restaurant_context_signal_exists(restaurant_dataset):
    # Records in the same city share street names / phone prefixes, so at least
    # some un-masked records carry the answer for every task's city.
    table = restaurant_dataset.table
    cities = {r["city"] for r in table if not is_missing(r["city"])}
    assert set(restaurant_dataset.ground_truth) <= cities | set(restaurant_dataset.ground_truth)


def test_buy_dataset_structure(buy_dataset):
    table = buy_dataset.table
    assert table.schema.names == ["name", "description", "price", "manufacturer"]
    assert all(t.attribute == "manufacturer" for t in buy_dataset.tasks)
    assert len(buy_dataset.tasks) == len(buy_dataset.ground_truth)
    knowledge = buy_dataset.knowledge
    task = buy_dataset.tasks[0]
    assert knowledge.lookup(task.entity_key(), "manufacturer") is not None


def test_buy_prevalence_higher_than_restaurant(buy_dataset, restaurant_dataset):
    # Buy is the easier benchmark in the paper (98.5 vs 93.0); the generators
    # encode that via higher average fact prevalence.
    def mean_prevalence(dataset, attribute):
        values = []
        for task in dataset.tasks:
            fact = dataset.knowledge.lookup(task.entity_key(), attribute)
            if fact:
                values.append(fact.prevalence)
        return sum(values) / len(values)

    assert mean_prevalence(buy_dataset, "manufacturer") > mean_prevalence(
        restaurant_dataset, "city"
    )
