"""Benchmark: regenerate Table 4 (entity resolution F1)."""

from conftest import run_once, scores_by_method

from repro.experiments import table4_entity_resolution


def test_table4_entity_resolution(benchmark):
    rows = run_once(benchmark, table4_entity_resolution.run, seed=0, max_tasks=60)
    assert len(rows) == 20
    def scores_for(name):
        return scores_by_method(rows, dataset=f"{name}[60]") or scores_by_method(rows, dataset=name)

    beer = scores_for("beer")
    amazon_google = scores_for("amazon_google")
    # Paper shape: on Beer the zero-shot LLM methods are comparable to the
    # trained matchers; Amazon-Google's domain-specific products remain the
    # hard case where the fine-tuned Ditto keeps a clear lead over UniDM/FM.
    assert beer["UniDM"] >= beer["Magellan"] - 5
    assert beer["UniDM"] >= 70.0
    assert amazon_google["Ditto"] > amazon_google["UniDM"]
    assert amazon_google["UniDM"] < beer["UniDM"]
