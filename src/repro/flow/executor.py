"""Streaming execution of compiled pipelines through a task-spec backend.

The executor walks a pipeline's stages in three structural layers:

* **segments** — maximal runs of partitionable stages, split at whole-table
  barriers (:class:`~repro.flow.operators.Join`,
  :class:`~repro.flow.operators.Ask`) and at
  :class:`~repro.flow.operators.Partition` markers (which change the
  streaming chunk size);
* **partitions** — each segment streams its input table partition-at-a-time,
  so the prompt material in flight is bounded by the partition size, never
  the table size;
* **waves** — within a partition, conflict-free LLM stages submit as one
  combined batch (see :func:`repro.flow.planner.independent_waves`), after
  cross-stage deduplication against the run-wide result cache.

The backend is any callable ``submit(list[TaskSpec]) -> list[TaskResult]``
answering in order — :meth:`repro.api.Client.submit_many` (local engine or
TCP service alike) or the serving service's internal plan runner.  A failed
item aborts the run with a :class:`~repro.flow.operators.FlowError` naming
the stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from ..datalake.table import Table
from ..obs.metrics import MetricsRegistry, SIZE_BUCKETS, get_default_registry
from ..obs.span import span
from .operators import FlowError, Operator, Partition
from .planner import Planner, WavePlan, independent_waves

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.results import TaskResult
    from ..api.specs import TaskSpec
    from .pipeline import Pipeline

#: How task specs reach an execution engine: a batch in, ordered results out.
SpecRunner = Callable[[Sequence["TaskSpec"]], "list[TaskResult]"]


@dataclass
class StageMetrics:
    """What one stage cost across every partition it ran on."""

    index: int
    op: str
    #: Compiled work items (before deduplication).
    items: int = 0
    #: Items whose spec was actually submitted (first seen in the run).
    submitted: int = 0
    #: Items served from the run-wide dedup cache instead.
    reused: int = 0
    #: Partitions this stage processed.
    partitions: int = 0

    def to_payload(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "op": self.op,
            "items": self.items,
            "submitted": self.submitted,
            "reused": self.reused,
            "partitions": self.partitions,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "StageMetrics":
        return cls(
            index=int(payload.get("index", 0)),
            op=str(payload.get("op", "")),
            items=int(payload.get("items", 0)),
            submitted=int(payload.get("submitted", 0)),
            reused=int(payload.get("reused", 0)),
            partitions=int(payload.get("partitions", 0)),
        )


@dataclass
class FlowReport:
    """Execution statistics of one pipeline run."""

    stages: list[StageMetrics] = field(default_factory=list)
    rows_in: int = 0
    rows_out: int = 0
    #: Compiled work items across all stages (what a per-row loop would run).
    specs: int = 0
    #: Specs actually submitted after cross-stage/partition deduplication.
    submitted: int = 0
    #: Distinct submission waves (dependency-aware stage fusion groups).
    waves: int = 0
    llm_tokens: int = 0
    llm_calls: int = 0
    elapsed: float = 0.0

    @property
    def reused(self) -> int:
        """Work items answered from the dedup cache instead of the LLM."""
        return self.specs - self.submitted

    @property
    def dedup_factor(self) -> float:
        """How many compiled items each submitted spec served (>= 1)."""
        return self.specs / self.submitted if self.submitted else 1.0

    def to_payload(self) -> dict[str, Any]:
        return {
            "stages": [stage.to_payload() for stage in self.stages],
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "specs": self.specs,
            "submitted": self.submitted,
            "waves": self.waves,
            "llm_tokens": self.llm_tokens,
            "llm_calls": self.llm_calls,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FlowReport":
        return cls(
            stages=[StageMetrics.from_payload(s) for s in payload.get("stages", [])],
            rows_in=int(payload.get("rows_in", 0)),
            rows_out=int(payload.get("rows_out", 0)),
            specs=int(payload.get("specs", 0)),
            submitted=int(payload.get("submitted", 0)),
            waves=int(payload.get("waves", 0)),
            llm_tokens=int(payload.get("llm_tokens", 0)),
            llm_calls=int(payload.get("llm_calls", 0)),
            elapsed=float(payload.get("elapsed", 0.0)),
        )


@dataclass
class FlowResult:
    """Outcome of one pipeline run: the output table plus side channels."""

    table: Table
    #: Table-level answers (Ask results, Join decisions), keyed by operator.
    answers: dict[str, Any] = field(default_factory=dict)
    report: FlowReport = field(default_factory=FlowReport)


class FlowExecutor:
    """Runs a pipeline over a table through a spec-submitting backend."""

    def __init__(
        self,
        submit: SpecRunner,
        *,
        batch_size: int = 64,
        metrics: MetricsRegistry | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.submit = submit
        self.batch_size = batch_size
        metrics = metrics or get_default_registry()
        self._m_waves = metrics.counter("flow.waves")
        self._m_wave_specs = metrics.histogram("flow.wave_specs", SIZE_BUCKETS)
        self._m_specs = metrics.counter("flow.specs")
        self._m_submitted = metrics.counter("flow.submitted")
        self._m_reused = metrics.counter("flow.reused")

    # ------------------------------------------------------------------ running
    def run(self, pipeline: "Pipeline", table: Table) -> FlowResult:
        """Execute ``pipeline`` over ``table`` and return the result."""
        pipeline.validate(table.schema.names)
        planner = Planner()
        report = FlowReport(
            stages=[
                StageMetrics(index=i, op=op.op)
                for i, op in enumerate(pipeline.stages)
            ],
            rows_in=len(table),
        )
        answers: dict[str, Any] = {}
        started = time.perf_counter()

        current = table
        for kind, size, stages in _segments(pipeline):
            if kind == "barrier":
                report.waves += 1
                current = self._run_waves(
                    [[stages]], current, planner, report, answers
                )
                continue
            waves = independent_waves(stages)
            report.waves += len(waves)
            parts_out: list[Table] = []
            for part in _chunks(current, size):
                parts_out.append(
                    self._run_waves(waves, part, planner, report, answers)
                )
            if parts_out:
                current = Table.concat(parts_out, name=current.name)
        report.rows_out = len(current)
        report.elapsed = time.perf_counter() - started
        return FlowResult(table=current, answers=answers, report=report)

    # ---------------------------------------------------------------- internals
    def _run_waves(
        self,
        waves: "list[list[tuple[int, Operator]]]",
        part: Table,
        planner: Planner,
        report: FlowReport,
        answers: dict[str, Any],
    ) -> Table:
        for wave in waves:
            if len(wave) == 1 and not wave[0][1].needs_llm:
                index, operator = wave[0]
                part = operator.transform(part)
                report.stages[index].partitions += 1
                continue
            plan = planner.plan_wave(wave, part)
            self._m_waves.inc()
            total_specs = sum(len(stage_plan.items) for stage_plan in plan.plans)
            self._m_wave_specs.observe(total_specs)
            # One span per LLM wave: submissions made inside inherit it via
            # the ambient context, so cluster dispatch spans nest beneath it.
            with span("flow.wave", specs=total_specs, stages=len(plan.plans)):
                self._submit_new(plan, planner, report)
                for stage_plan in plan.plans:
                    metrics = report.stages[stage_plan.index]
                    metrics.items += len(stage_plan.items)
                    metrics.submitted += stage_plan.fresh
                    metrics.reused += len(stage_plan.items) - stage_plan.fresh
                    metrics.partitions += 1
                    report.specs += len(stage_plan.items)
                    report.submitted += stage_plan.fresh
                    self._m_specs.inc(len(stage_plan.items))
                    self._m_submitted.inc(stage_plan.fresh)
                    self._m_reused.inc(len(stage_plan.items) - stage_plan.fresh)
                    values = [planner.answer(key) for key in stage_plan.keys]
                    part = stage_plan.operator.apply(
                        part, list(zip(stage_plan.items, values)), answers
                    )
        return part

    def _submit_new(
        self, plan: WavePlan, planner: Planner, report: FlowReport
    ) -> None:
        pending = plan.new
        stage_of = {
            key: (stage_plan.index, stage_plan.operator.op)
            for stage_plan in plan.plans
            for key in stage_plan.keys
        }
        for start in range(0, len(pending), self.batch_size):
            chunk = pending[start : start + self.batch_size]
            results = self.submit([spec for _, spec in chunk])
            if len(results) != len(chunk):
                raise FlowError(
                    f"backend answered {len(results)} results for "
                    f"{len(chunk)} submitted specs"
                )
            for (key, _), result in zip(chunk, results):
                if result.error is not None:
                    index, op = stage_of.get(key, ("?", "?"))
                    raise FlowError(
                        f"stage {index} ({op}) failed: "
                        f"[{result.error.code}] {result.error.message}"
                    )
                planner.record(key, result)
                report.llm_tokens += result.tokens
                report.llm_calls += result.calls


def _segments(
    pipeline: "Pipeline",
) -> "list[tuple[str, int | None, Any]]":
    """Split the stage list into streaming segments and barrier stages.

    Returns ``("stream", size, [(index, op), ...])`` entries for runs of
    partitionable stages (``size`` is the partition size in force, ``None``
    meaning the whole table at once) and ``("barrier", size, (index, op))``
    entries for whole-table stages.  ``Partition`` markers update the size
    and are consumed here — they never execute.
    """
    segments: list[tuple[str, int | None, Any]] = []
    buffer: list[tuple[int, Operator]] = []
    size = pipeline.partition_size

    def flush() -> None:
        nonlocal buffer
        if buffer:
            segments.append(("stream", size, buffer))
        buffer = []

    for index, operator in enumerate(pipeline.stages):
        if isinstance(operator, Partition):
            flush()
            size = operator.size
            continue
        if not operator.partitionable:
            flush()
            segments.append(("barrier", size, (index, operator)))
            continue
        buffer.append((index, operator))
    flush()
    return segments


def _chunks(table: Table, size: int | None) -> Iterable[Table]:
    # An empty table still flows through as one partition so that relational
    # stages (Select, added flag columns, ...) keep reshaping the schema.
    if len(table) == 0 or size is None or size >= len(table):
        return [table]
    return table.partitions(size)


__all__ = [
    "FlowExecutor",
    "FlowReport",
    "FlowResult",
    "SpecRunner",
    "StageMetrics",
]
