"""Unit tests for the string similarity utilities."""

import numpy as np
import pytest

from repro.datalake import text


def test_normalize_collapses_whitespace_and_case():
    assert text.normalize("  Hello   World ") == "hello world"
    assert text.normalize(42) == "42"


def test_tokenize_alphanumeric_only():
    assert text.tokenize("Hello, world! 42") == ["hello", "world", "42"]
    assert text.tokenize("") == []


def test_char_ngrams_short_string():
    grams = text.char_ngrams("ab", n=3)
    assert grams == [" ab "][:1] or len(grams) >= 1


def test_jaccard_basics():
    assert text.jaccard([], []) == 0.0
    assert text.jaccard(["a"], ["a"]) == 1.0
    assert text.jaccard(["a"], ["b"]) == 0.0
    assert text.token_jaccard("red fox", "red dog") == pytest.approx(1 / 3)


def test_overlap_coefficient_containment():
    assert text.overlap_coefficient(["a", "b"], ["a", "b", "c", "d"]) == 1.0
    assert text.overlap_coefficient([], ["a"]) == 0.0


def test_levenshtein_known_values():
    assert text.levenshtein("kitten", "sitting") == 3
    assert text.levenshtein("abc", "abc") == 0
    assert text.levenshtein("", "abc") == 3
    assert text.levenshtein("abc", "") == 3


def test_edit_similarity_bounds():
    assert text.edit_similarity("same", "same") == 1.0
    assert text.edit_similarity("", "") == 1.0
    assert 0.0 <= text.edit_similarity("abc", "xyz") <= 1.0


def test_string_similarity_orders_related_strings():
    close = text.string_similarity("ruth's chris steak house", "ruth's chris steakhouse")
    far = text.string_similarity("ruth's chris steak house", "golden dragon noodle bar")
    assert close > far
    assert 0.0 <= far <= close <= 1.0


def test_numeric_similarity():
    assert text.numeric_similarity("100", "100") == 1.0
    assert text.numeric_similarity("$100", "100") == 1.0
    assert text.numeric_similarity("100", "50") == pytest.approx(0.5)
    assert text.numeric_similarity("abc", "100") == 0.0
    assert text.numeric_similarity("0", "0") == 1.0


def test_hashed_ngram_vector_is_normalised():
    vec = text.hashed_ngram_vector("hello world", dim=64)
    assert vec.shape == (64,)
    assert np.isclose(np.linalg.norm(vec), 1.0)


def test_embed_values_shapes():
    matrix = text.embed_values(["a", "b", "c"], dim=32)
    assert matrix.shape == (3, 32)
    assert text.embed_values([], dim=32).shape == (0, 32)


def test_cosine_similarity_zero_vector():
    a = np.zeros(4)
    b = np.ones(4)
    assert text.cosine_similarity(a, b) == 0.0
    assert text.cosine_similarity(b, b) == pytest.approx(1.0)


def test_attribute_name_similarity_handles_underscores():
    assert text.attribute_name_similarity("country_full", "country") > 0.4
    assert text.attribute_name_similarity("price", "color") < 0.4
