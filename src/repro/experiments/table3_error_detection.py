"""Table 3 — error detection F1 on Hospital and Adult.

Compares HoloClean, HoloDetect, FM and UniDM on cells with 5% injected errors.
"""

from __future__ import annotations

from ..baselines import HoloCleanDetector, HoloDetectDetector
from ..datasets import load_dataset
from ..eval import evaluate, format_table
from .common import make_fm, make_unidm, result_row

PAPER_RESULTS: dict[str, dict[str, float]] = {
    "hospital": {"HoloClean": 51.4, "HoloDetect": 94.4, "FM": 97.1, "UniDM": 99.8},
    "adult": {"HoloClean": 54.5, "HoloDetect": 99.1, "FM": 99.1, "UniDM": 99.7},
}

DATASETS = ("hospital", "adult")


def methods_for(dataset, seed: int):
    return [
        ("HoloClean", HoloCleanDetector(seed=seed)),
        ("HoloDetect", HoloDetectDetector(seed=seed)),
        ("FM", make_fm(dataset, "manual", seed=seed + 1, name="FM")),
        ("UniDM", make_unidm(dataset, seed=seed + 2)),
    ]


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    rows: list[dict] = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=seed)
        for method_name, method in methods_for(dataset, seed):
            result = evaluate(method, dataset, max_tasks=max_tasks)
            rows.append(
                result_row(
                    result,
                    method=method_name,
                    paper=PAPER_RESULTS[dataset_name].get(method_name, float("nan")),
                    precision=100 * result.extras.get("precision", 0.0),
                    recall=100 * result.extras.get("recall", 0.0),
                )
            )
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["dataset", "method", "score", "paper", "precision", "recall"],
        title="Table 3 — Error detection F1 (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
