"""Pipeline assembly: validation, lineage, wave scheduling, wire form."""

import json

import pytest

from repro.datalake import Table
from repro.flow import (
    Ask,
    DetectErrors,
    Extract,
    Filter,
    FlowError,
    Impute,
    Partition,
    Pipeline,
    Planner,
    Select,
    Transform,
    independent_waves,
    spec_key,
)

COLUMNS = ["name", "city", "phone"]


def test_pipeline_needs_stages():
    with pytest.raises(FlowError):
        Pipeline([])
    with pytest.raises(FlowError):
        Pipeline(["not an operator"])
    with pytest.raises(FlowError):
        Pipeline([Impute("city")], partition_size=0)


def test_validate_tracks_columns_across_stages():
    flow = Pipeline(
        [
            DetectErrors("city"),
            Filter("city_error", "falsy"),
            Impute("city"),
            Transform("phone", examples=[["a", "b"]], output_column="intl"),
            Select(["name", "city", "intl"]),
        ]
    )
    assert flow.validate(COLUMNS) == ["name", "city", "intl"]


def test_validate_names_the_failing_stage():
    flow = Pipeline([Impute("city"), Transform("zipcode", examples=[["a", "b"]])])
    with pytest.raises(FlowError, match=r"stage 1 \(transform\)"):
        flow.validate(COLUMNS)


def test_validate_accepts_columns_written_by_earlier_stages():
    flow = Pipeline(
        [
            Extract("page", "team"),
            Filter("team", "not_missing"),
            Transform("team", examples=[["a", "A"]]),
        ]
    )
    assert flow.validate(["page"]) == ["page", "team"]


def test_lineage_reports_provenance_per_output_column():
    flow = Pipeline(
        [
            DetectErrors("city"),
            Impute("city"),
            Select(["city", "city_error"]),
        ]
    )
    lineage = flow.lineage(COLUMNS)
    assert lineage == {
        "city": ["source", "1:impute"],
        "city_error": ["0:detect_errors"],
    }


# ------------------------------------------------------------ wave scheduling
def _indexed(*operators):
    return list(enumerate(operators))


def test_independent_stages_fuse_into_one_wave():
    # Two scoped writers on disjoint columns: one submission round.
    waves = independent_waves(
        _indexed(
            Transform("phone", examples=[["a", "b"]], output_column="intl"),
            Extract("page", "team"),
        )
    )
    assert [len(w) for w in waves] == [2]


def test_read_after_write_hazard_splits_waves():
    # The second transform reads what the first one writes.
    waves = independent_waves(
        _indexed(
            Transform("phone", examples=[["a", "b"]], output_column="intl"),
            Transform("intl", examples=[["a", "b"]], output_column="pretty"),
        )
    )
    assert [len(w) for w in waves] == [1, 1]


def test_evidence_scanning_operators_never_follow_a_writer():
    # Impute ships whole rows as evidence, so it must see the detector's
    # flag column exactly as a sequential execution would.
    waves = independent_waves(_indexed(DetectErrors("city"), Impute("city")))
    assert [len(w) for w in waves] == [1, 1]
    # In front of the writers it can lead a wave: the scoped transform that
    # follows reads nothing the impute stage writes, so the two fuse.
    waves = independent_waves(
        _indexed(Impute("city"), Transform("phone", examples=[["a", "b"]], output_column="intl"))
    )
    assert [len(w) for w in waves] == [2]


def test_relational_stages_are_their_own_wave():
    waves = independent_waves(
        _indexed(
            Transform("phone", examples=[["a", "b"]], output_column="intl"),
            Filter("city", "not_missing"),
            Extract("page", "team"),
        )
    )
    assert [len(w) for w in waves] == [1, 1, 1]


# ------------------------------------------------------------------- planning
def test_planner_dedups_across_stages_and_partitions():
    table = Table.from_dicts(
        "t",
        [
            {"v": "x", "w": "x"},
            {"v": "x", "w": "y"},
        ],
    )
    planner = Planner()
    examples = [["a", "A"]]
    wave = planner.plan_wave(
        _indexed(
            Transform("v", examples=examples, output_column="v2"),
            Transform("w", examples=examples, output_column="w2"),
        ),
        table,
    )
    # Four items, but the value "x" appears three times -> two unique specs.
    assert sum(len(p.items) for p in wave.plans) == 4
    assert len(wave.new) == 2
    assert wave.plans[0].fresh == 1  # "x" claimed once by the first stage
    assert wave.plans[1].fresh == 1  # "y" is the only new value in stage 2

    class _Result:
        def __init__(self, answer):
            self.answer = answer

    for key, _ in wave.new:
        planner.record(key, _Result("!"))
    # A later partition with already-seen values compiles to zero new specs.
    wave2 = planner.plan_wave(
        _indexed(Transform("v", examples=examples, output_column="v2")), table
    )
    assert len(wave2.new) == 0
    assert wave2.plans[0].fresh == 0


def test_spec_key_is_canonical_and_compact():
    from repro.api import TransformationSpec

    a = TransformationSpec(value="x", examples=[["a", "b"]])
    b = TransformationSpec(value="x", examples=(("a", "b"),))
    c = TransformationSpec(value="y", examples=[["a", "b"]])
    assert spec_key(a) == spec_key(b)  # representation-insensitive
    assert spec_key(a) != spec_key(c)  # content-sensitive
    # Evidence-carrying specs can be kilobytes; the key is a fixed-size digest.
    assert len(spec_key(a)) == 64


# ------------------------------------------------------------------ wire form
def test_pipeline_payload_round_trip():
    flow = Pipeline(
        [
            DetectErrors("city"),
            Partition(8),
            Impute("city"),
            Ask("how many?", name="n"),
        ],
        name="clean",
        partition_size=32,
    )
    payload = json.loads(json.dumps(flow.to_payload()))
    rebuilt = Pipeline.from_payload(payload)
    assert rebuilt.name == "clean"
    assert rebuilt.partition_size == 32
    assert [s.op for s in rebuilt.stages] == ["detect_errors", "partition", "impute", "ask"]
    assert rebuilt.to_payload() == flow.to_payload()


def test_pipeline_from_payload_rejects_garbage():
    with pytest.raises(FlowError):
        Pipeline.from_payload({"stages": []})
    with pytest.raises(FlowError):
        Pipeline.from_payload({"stages": [{"op": "nope"}]})
    with pytest.raises(FlowError):
        Pipeline.from_payload({"stages": [{"op": "impute", "column": "c"}], "partition_size": -1})
