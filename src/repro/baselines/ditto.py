"""Ditto baseline (Li et al. 2020) — fine-tuned matcher for entity resolution.

Ditto fine-tunes a pre-trained transformer on labelled record pairs.  The
reproduction keeps the supervised-matcher shape: each candidate pair is turned
into a feature vector of string/numeric similarities over the serialized
records, and a logistic-regression head is trained on the benchmark's labelled
training split.  Because it *learns from in-domain labels* it remains strong on
the domain-specific benchmarks (Amazon-Google) where zero-shot LLM prompting
struggles — the behaviour Table 4 highlights.
"""

from __future__ import annotations

import re
from typing import Any, Sequence

import numpy as np

from ..core.tasks.entity_resolution import EntityResolutionTask
from ..core.types import TaskType
from ..datalake.text import (
    edit_similarity,
    numeric_similarity,
    token_jaccard,
    trigram_jaccard,
)
from ..datasets.base import BenchmarkDataset
from ..llm.finetune import LabeledPair
from .base import Baseline


def pair_features(left: str, right: str) -> np.ndarray:
    """Similarity feature vector of two serialized records."""
    numbers_left = re.findall(r"\d+\.?\d*", left)
    numbers_right = re.findall(r"\d+\.?\d*", right)
    number_overlap = 0.0
    if numbers_left and numbers_right:
        number_overlap = len(set(numbers_left) & set(numbers_right)) / len(
            set(numbers_left) | set(numbers_right)
        )
    return np.array(
        [
            1.0,
            token_jaccard(left, right),
            trigram_jaccard(left, right),
            edit_similarity(left, right),
            numeric_similarity(numbers_left[-1] if numbers_left else "", numbers_right[-1] if numbers_right else ""),
            number_overlap,
            abs(len(left) - len(right)) / max(len(left), len(right), 1),
        ]
    )


class DittoMatcher(Baseline):
    """Supervised similarity-feature matcher trained on labelled pairs."""

    name = "Ditto"

    def __init__(self, seed: int = 0, learning_rate: float = 0.8, epochs: int = 400):
        super().__init__(seed)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.weights: np.ndarray | None = None

    # -- training -------------------------------------------------------------------
    def fit(self, pairs: Sequence[LabeledPair]) -> "DittoMatcher":
        if not pairs:
            raise ValueError("Ditto requires labelled training pairs")
        X = np.vstack([pair_features(p.left, p.right) for p in pairs])
        y = np.array([1.0 if p.label else 0.0 for p in pairs])
        weights = np.zeros(X.shape[1])
        for _ in range(self.epochs):
            predictions = _sigmoid(X @ weights)
            gradient = X.T @ (predictions - y) / len(y)
            weights -= self.learning_rate * gradient
        self.weights = weights
        return self

    # -- inference -------------------------------------------------------------------
    def predict_pair(self, left: str, right: str) -> bool:
        if self.weights is None:
            raise RuntimeError("call fit() before predicting")
        return bool(_sigmoid(pair_features(left, right) @ self.weights) >= 0.5)

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.ENTITY_RESOLUTION)
        if self.weights is None:
            if not dataset.train_pairs:
                raise ValueError(
                    f"dataset {dataset.name!r} has no training split for Ditto"
                )
            self.fit(dataset.train_pairs)
        predictions: list[bool] = []
        for task in dataset.tasks:
            if not isinstance(task, EntityResolutionTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            predictions.append(self.predict_pair(task.describe_a(), task.describe_b()))
        return predictions


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
