"""Unit tests for the evaluation metrics."""

import pytest

from repro.eval import (
    accuracy,
    confusion,
    f1_score,
    mean_text_f1,
    precision,
    recall,
    text_f1,
    values_match,
)


def test_values_match_normalises():
    assert values_match(" Beverly Hills ", "beverly hills")
    assert not values_match("los angeles", "beverly hills")


def test_accuracy_basics():
    assert accuracy(["a", "b"], ["a", "c"]) == 0.5
    assert accuracy([], []) == 0.0
    with pytest.raises(ValueError):
        accuracy(["a"], [])


def test_confusion_counts_and_derived_metrics():
    matrix = confusion([True, True, False, False], [True, False, True, False])
    assert (matrix.tp, matrix.fp, matrix.fn, matrix.tn) == (1, 1, 1, 1)
    assert matrix.precision == 0.5
    assert matrix.recall == 0.5
    assert matrix.f1 == 0.5
    assert matrix.accuracy == 0.5


def test_f1_degenerate_cases():
    assert f1_score([False, False], [True, True]) == 0.0
    assert f1_score([True, True], [True, True]) == 1.0
    assert precision([False], [False]) == 0.0
    assert recall([False], [True]) == 0.0


def test_text_f1_token_overlap():
    assert text_f1("Kevin Durant", "Kevin Durant") == 1.0
    assert text_f1("Kevin", "Kevin Durant") == pytest.approx(2 / 3)
    assert text_f1("", "") == 1.0
    assert text_f1("", "x") == 0.0
    assert text_f1("completely different", "another phrase") == 0.0


def test_mean_text_f1():
    score = mean_text_f1(["Kevin Durant", "wrong"], ["Kevin Durant", "right"])
    assert score == pytest.approx(0.5)
