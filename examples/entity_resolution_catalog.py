"""Entity resolution across two product catalogues, UniDM vs. baselines.

The Walmart-Amazon style benchmark pairs records from two product tables; the
script runs the zero-shot UniDM pipeline next to the trained Ditto and
Magellan matchers, then shows the fine-tuning effect of Table 5: a small
(GPT-J-6B class) model is nearly useless zero-shot but competitive after the
simulated lightweight fine-tuning on the labelled training split.  Finally it
adjudicates one pair through the :class:`repro.api.Client` facade with a
wire-ready ``EntityResolutionSpec`` — the same request a remote catalogue
service would send.

Run with::

    python examples/entity_resolution_catalog.py
"""

from __future__ import annotations

from repro.api import Client, EntityResolutionSpec
from repro.baselines import DittoMatcher, MagellanMatcher
from repro.core import UniDMConfig
from repro.datasets import load_dataset
from repro.eval import evaluate, format_table
from repro.experiments.common import UniDMMethod, make_llm, make_unidm
from repro.llm import FineTuner
from repro.llm.profiles import get_profile


def main() -> None:
    dataset = load_dataset("walmart_amazon", seed=0, n_entities=60, n_pairs=100, n_train_pairs=300)

    rows = []
    for name, method in (
        ("Magellan (trained)", MagellanMatcher(seed=0)),
        ("Ditto (trained)", DittoMatcher(seed=0)),
        ("UniDM zero-shot (GPT-3 class)", make_unidm(dataset, seed=2)),
        ("UniDM zero-shot (GPT-J-6B class)", make_unidm(dataset, model="gpt-j-6b", seed=2)),
    ):
        result = evaluate(method, dataset)
        rows.append({"method": name, "f1": result.score_percent})

    # Simulated lightweight fine-tuning of the small model (Table 5).
    tuned_llm, report = FineTuner().fit(
        get_profile("gpt-j-6b"),
        dataset.train_pairs,
        knowledge=dataset.knowledge,
        domain=dataset.extra["domain"],
        seed=2,
    )
    tuned = UniDMMethod(llm=tuned_llm, config=UniDMConfig.full(seed=2), name="UniDM fine-tuned (GPT-J-6B)")
    result = evaluate(tuned, dataset)
    rows.append({"method": "UniDM fine-tuned (GPT-J-6B class)", "f1": result.score_percent})

    print(format_table(rows, title="Entity resolution on the product catalogue pairs (F1 %)"))
    print(
        f"\nFine-tuning fitted a decision threshold of {report.threshold:.2f} "
        f"on {report.n_examples} labelled pairs (train F1 {report.train_f1:.2f})."
    )

    # One pair through the unified client API (the wire-protocol view of the
    # same task): record dicts in, a typed TaskResult out.
    pair_task = dataset.tasks[0]
    spec = EntityResolutionSpec(
        record_a=pair_task.record_a.to_dict(),
        record_b=pair_task.record_b.to_dict(),
    )
    with Client.local(llm=make_llm(dataset, seed=2), config=UniDMConfig.full(seed=2)) as client:
        outcome = client.submit(spec)
    verdict = "the same entity" if outcome.answer else "different entities"
    print(
        f"\nClient facade: the first candidate pair is judged {verdict} "
        f"({outcome.calls} LLM calls, {outcome.tokens} tokens)."
    )


if __name__ == "__main__":
    main()
