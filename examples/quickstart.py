"""Quickstart: impute a missing value with the full UniDM pipeline.

Builds a tiny city table, registers the world knowledge a pre-trained LLM
would plausibly have, and runs the three-step UniDM pipeline (automatic
context retrieval -> context parsing -> cloze target prompt) to fill in
Copenhagen's missing timezone — the running example of the paper's Figure 2.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ImputationTask, UniDM, UniDMConfig
from repro.datalake import Attribute, AttributeType, Schema, Table
from repro.llm import SimulatedLLM, WorldKnowledge


def build_table() -> Table:
    schema = Schema(
        [
            Attribute("city", primary_key=True, domain="geography.city"),
            Attribute("country", domain="geography.country"),
            Attribute("population", AttributeType.NUMERIC),
            Attribute("timezone", AttributeType.CATEGORICAL, domain="geography.timezone"),
        ]
    )
    rows = [
        {"city": "Florence", "country": "Italy", "population": 382_000, "timezone": "Central European Time"},
        {"city": "Alicante", "country": "Spain", "population": 337_482, "timezone": "Central European Time"},
        {"city": "Antwerp", "country": "Belgium", "population": 530_000, "timezone": "Central European Time"},
        {"city": "London", "country": "United Kingdom", "population": 8_900_000, "timezone": "Greenwich Mean Time"},
        {"city": "Helsinki", "country": "Finland", "population": 656_000, "timezone": "Eastern European Time"},
        {"city": "Copenhagen", "country": "Denmark", "population": 809_314, "timezone": None},
    ]
    return Table("cities", schema, rows)


def build_knowledge(table: Table) -> WorldKnowledge:
    """What the (simulated) LLM already knows about these entities."""
    knowledge = WorldKnowledge()
    knowledge.set_relation_template("country", "{subject} is a city in the country {value}")
    knowledge.set_relation_template("timezone", "{subject} is in the timezone {value}")
    knowledge.add_attribute_link("country", "timezone", 0.9)
    knowledge.add_attribute_link("population", "timezone", 0.1)
    for record in table:
        knowledge.add_fact(record["city"], "country", record["country"], prevalence=0.95)
        if record["timezone"]:
            knowledge.add_fact(record["city"], "timezone", record["timezone"], prevalence=0.9)
    knowledge.add_fact("Copenhagen", "timezone", "Central European Time", prevalence=0.9)
    return knowledge


def main() -> None:
    table = build_table()
    llm = SimulatedLLM(knowledge=build_knowledge(table), seed=1)
    pipeline = UniDM(llm, UniDMConfig.full(candidate_sample_size=5, top_k_instances=3))

    copenhagen = table[5]
    task = ImputationTask(table, copenhagen, "timezone")
    result = pipeline.run(task)

    print("Target query     :", result.query)
    print("Helpful attribute:", result.trace.meta_retrieval_output)
    print("Parsed context   :", result.context_text)
    print("Target prompt    :", result.trace.target_prompt)
    print("Answer           :", result.value)
    print(f"LLM cost         : {result.usage.calls} calls, {result.total_tokens} tokens")


if __name__ == "__main__":
    main()
