"""The ``repro top`` table: live per-tenant serving health at a glance.

One render turns a stats snapshot (with the monitor sections PR 8 added —
``timeseries``, ``slos``, ``alerts``, ``health``) into a compact fixed-width
table: per tenant, the windowed request rate, windowed p99 latency, shed
rate (rate-limit + admission), remaining error budget and SLO state, plus a
header line with readiness and firing alerts.  Everything is computed
service-side by the rolling time-series layer; this module only formats.

:func:`watch_loop` is the shared polling driver — ``repro top`` runs it
with this renderer, and ``repro stats --watch`` reuses it so both commands
refresh identically (ANSI home+clear between frames, ``--once`` for
scripts and CI).
"""

from __future__ import annotations

import time
from typing import Any, Callable, IO, Mapping

#: Preferred display window; falls back to the shortest one with data.
DEFAULT_WINDOW = "10s"

#: ANSI: clear screen + cursor home (what ``watch``/``top`` do per frame).
_CLEAR = "\x1b[2J\x1b[H"


def _series_window(
    series: Mapping[str, Any], name: str, window: str
) -> Mapping[str, Any]:
    """One metric's stats for ``window`` (or its shortest populated one)."""
    windows = (series.get(name) or {}).get("windows") or {}
    if window in windows:
        return windows[window]
    for stats in windows.values():
        return stats
    return {}


def _fmt(value: Any, scale: float = 1.0, digits: int = 1) -> str:
    if value is None:
        return "-"
    return f"{float(value) * scale:.{digits}f}"


def _tenant_names(snapshot: Mapping[str, Any]) -> list[str]:
    """Every tenant the snapshot knows about, from any section."""
    names: set[str] = set()
    tenancy = snapshot.get("tenancy") or {}
    names.update((tenancy.get("tenants") or {}).keys())
    for slo in (snapshot.get("slos") or {}).values():
        if slo.get("tenant"):
            names.add(slo["tenant"])
    series = (snapshot.get("timeseries") or {}).get("series") or {}
    for name in series:
        if name.startswith("tenant."):
            parts = name.split(".")
            if len(parts) >= 3:
                names.add(parts[1])
    return sorted(names)


def _slo_cells(
    snapshot: Mapping[str, Any], tenant: str | None
) -> tuple[str, str]:
    """``(budget_remaining, slo_state)`` cells for one tenant (or global)."""
    budget: float | None = None
    states: list[str] = []
    for slo in (snapshot.get("slos") or {}).values():
        if (slo.get("tenant") or None) != tenant:
            continue
        states.append(slo.get("state", "ok"))
        remaining = slo.get("budget_remaining")
        if remaining is not None:
            budget = remaining if budget is None else min(budget, remaining)
    if not states:
        return "-", "-"
    state = "FIRING" if "firing" in states else "ok"
    return ("-" if budget is None else f"{budget * 100:.0f}%"), state


def render_top(snapshot: Mapping[str, Any], *, window: str = DEFAULT_WINDOW) -> str:
    """Render one stats snapshot as the ``repro top`` table."""
    series = (snapshot.get("timeseries") or {}).get("series") or {}
    health = snapshot.get("health") or {}
    alerts = snapshot.get("alerts") or []
    front = snapshot.get("service") or snapshot.get("cluster") or {}
    admission = (snapshot.get("service") or {}).get("admission") or snapshot.get(
        "admission"
    ) or {}

    ready = health.get("ready")
    ready_text = "yes" if ready else ("n/a" if ready is None else "NO")
    # Cluster mode: the health section carries live/total worker counts
    # (elastic — resizes and crash restarts move them at runtime).
    workers = health.get("workers") or {}
    workers_text = (
        f" | workers: {workers.get('live', 0)}/{workers.get('total', 0)}"
        if workers
        else ""
    )
    lines = [
        f"repro top — window {window} | ready: {ready_text}{workers_text} | "
        f"alerts firing: {len(alerts)} | pending: {admission.get('pending', 0)} | "
        f"served: {front.get('requests_served', snapshot.get('requests_served', 0))}",
        f"{'TENANT':<16} {'QPS':>8} {'P99_MS':>8} {'SHED_PS':>8} "
        f"{'BUDGET':>7} {'SLO':>7}",
    ]

    def row(
        label: str,
        rate_name: str,
        latency_name: str,
        shed_names: "list[str]",
        tenant: str | None,
    ) -> str:
        qps = _series_window(series, rate_name, window).get("rate")
        p99 = _series_window(series, latency_name, window).get("p99")
        shed = None
        for name in shed_names:
            value = _series_window(series, name, window).get("rate")
            if value is not None:
                shed = (shed or 0.0) + value
        budget, state = _slo_cells(snapshot, tenant)
        return (
            f"{label:<16} {_fmt(qps):>8} {_fmt(p99, 1000.0):>8} "
            f"{_fmt(shed):>8} {budget:>7} {state:>7}"
        )

    lines.append(
        row(
            "(service)",
            "service.requests",
            "service.batch_latency",
            ["service.admission.shed", "router.admission.shed"],
            None,
        )
    )
    for tenant in _tenant_names(snapshot):
        prefix = f"tenant.{tenant}"
        lines.append(
            row(
                tenant,
                f"{prefix}.admitted",
                f"{prefix}.latency",
                [f"{prefix}.rate_limited"],
                tenant,
            )
        )
    for alert in alerts:
        lines.append(
            f"ALERT [{alert.get('severity', '?')}] {alert.get('slo', '?')} "
            f"firing for {alert.get('for_s', 0)}s on {alert.get('metric', '?')}"
        )
    reasons = health.get("reasons") or []
    if reasons:
        lines.append("NOT READY: " + "; ".join(reasons))
    return "\n".join(lines)


def watch_loop(
    fetch: Callable[[], Mapping[str, Any]],
    render: Callable[[Mapping[str, Any]], str],
    *,
    interval: float = 2.0,
    once: bool = False,
    out: IO[str],
    err: IO[str],
) -> int:
    """Poll ``fetch`` and paint ``render`` until interrupted.

    The shared driver of ``repro top`` and ``repro stats --watch``: one
    frame per ``interval`` seconds (screen cleared between frames),
    ``once`` prints a single frame with no clearing (scripts, CI smoke).
    An unreachable endpoint prints its message and exits 1 — on the first
    frame immediately; mid-watch it also ends the loop (the service went
    away).
    """
    from .fetch import StatsUnreachable

    while True:
        try:
            snapshot = fetch()
        except StatsUnreachable as exc:
            print(str(exc), file=err)
            return 1
        frame = render(snapshot)
        if once:
            print(frame, file=out)
            return 0
        print(_CLEAR + frame, file=out, flush=True)
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


__all__ = ["DEFAULT_WINDOW", "render_top", "watch_loop"]
