"""Consistent hashing — how task specs pick their shard.

The router places every :class:`~repro.api.specs.TaskSpec` on a classic
consistent-hash ring: each worker contributes ``replicas`` virtual nodes
(digests of ``"<worker-id>#<replica>"``), a spec hashes by its canonical
wire form, and the first virtual node clockwise owns it.  Two properties
make this the right structure for cache affinity:

* **stability** — the digests involve no process-local state (no Python
  ``hash()``), so the same spec routes to the same worker across batches,
  connections and restarts.  Re-submitting yesterday's workload hits each
  worker's warm :class:`~repro.serving.cache.PersistentCache` shard.
* **minimal disruption** — removing a dead worker re-routes only the keys
  that worker owned; every other spec keeps its shard (and its cache).

The routing key is :func:`repro.flow.planner.spec_key` — the *same* digest
the flow planner dedups on — so "identical work" means one thing across the
whole stack: the planner reuses it, the router co-locates it, the shard's
cache serves it.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from ..flow.planner import spec_key

__all__ = ["HashRing", "minimal_moved_keys", "spec_key"]


def _digest(value: str) -> int:
    """Stable 64-bit position on the ring for an arbitrary string."""
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over string node ids.

    Parameters
    ----------
    nodes:
        Initial node ids (worker ids).
    replicas:
        Virtual nodes per id; more replicas smooth the key distribution
        at the cost of a larger (still tiny) ring.

    Examples
    --------
    >>> ring = HashRing(["w0", "w1", "w2"])
    >>> ring.node_for("some-spec-key") in {"w0", "w1", "w2"}
    True
    >>> ring.node_for("some-spec-key") == ring.node_for("some-spec-key")
    True
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        #: Sorted virtual-node positions; aligned with ``_owners``.
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # ---------------------------------------------------------------- members
    @property
    def nodes(self) -> set[str]:
        """The live node ids currently on the ring."""
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add ``node``'s virtual nodes to the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _digest(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove ``node`` from the ring; its keys re-route to neighbours."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # ---------------------------------------------------------------- routing
    def node_for(self, key: str) -> str:
        """The node owning ``key``: first virtual node clockwise of its digest.

        Raises
        ------
        LookupError
            If the ring is empty (every worker removed).
        """
        if not self._points:
            raise LookupError("hash ring is empty: no live workers")
        index = bisect.bisect(self._points, _digest(key)) % len(self._points)
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each node owns (diagnostics)."""
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def with_node(self, node: str) -> "HashRing":
        """A copy of this ring with ``node`` added (placement what-if)."""
        ring = HashRing(self._nodes, replicas=self.replicas)
        ring.add(node)
        return ring

    def without_node(self, node: str) -> "HashRing":
        """A copy of this ring with ``node`` removed (placement what-if)."""
        ring = HashRing(self._nodes, replicas=self.replicas)
        ring.remove(node)
        return ring


def minimal_moved_keys(
    before: HashRing, after: HashRing, keys: Iterable[str]
) -> dict[str, tuple[str, str]]:
    """Keys whose owner differs between two ring states.

    Returns ``key -> (old_owner, new_owner)`` for exactly the keys that
    relocate — the consistent-hash-minimal migration set the router copies
    shard entries for on a resize.  Consistent hashing guarantees this set
    only ever involves the node that joined or left: surviving pairs never
    trade keys (``tests/cluster/test_hashing.py`` proves it property-based).
    """
    moved: dict[str, tuple[str, str]] = {}
    for key in keys:
        old_owner = before.node_for(key)
        new_owner = after.node_for(key)
        if old_owner != new_owner:
            moved[key] = (old_owner, new_owner)
    return moved
