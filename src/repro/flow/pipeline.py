"""Declarative table-level pipelines over the unified task framework.

A :class:`Pipeline` is an ordered list of
:class:`~repro.flow.operators.Operator` stages applied to one
:class:`~repro.datalake.table.Table`::

    from repro.flow import DetectErrors, Impute, Pipeline, Transform

    flow = Pipeline(
        [
            DetectErrors("phone"),
            Impute("city"),
            Transform("phone", examples=[["212-555-0199", "(212) 555 0199"]]),
        ],
        partition_size=32,
    )
    result = flow.run(table, client=Client.local(seed=0))
    result.table           # the cleaned table
    result.report          # specs compiled / submitted / reused, per stage

Stages are validated statically against the input columns (each stage must
find the columns it reads; see :meth:`Pipeline.validate`), and
:meth:`Pipeline.lineage` reports, per output column, which stages produced
it.  Execution compiles stages into deduplicated batches of
:class:`~repro.api.specs.TaskSpec` requests and streams them through any
:class:`~repro.api.Client` — the same pipeline runs in-process or against a
remote service, or ships wholesale as one
:class:`~repro.api.pipeline_spec.PipelineSpec` request
(:meth:`Pipeline.submit`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..datalake.table import Table
from .executor import FlowExecutor, FlowResult
from .operators import FlowError, Operator, operator_from_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.client import Client


class Pipeline:
    """An ordered list of table-level operators, compiled and run as one plan."""

    def __init__(
        self,
        stages: Sequence[Operator],
        *,
        name: str = "flow",
        partition_size: int | None = None,
    ):
        stages = list(stages)
        if not stages:
            raise FlowError("a pipeline needs at least one stage")
        for stage in stages:
            if not isinstance(stage, Operator):
                raise FlowError(
                    f"stages must be flow operators, got {type(stage).__name__}"
                )
        if partition_size is not None and partition_size < 1:
            raise FlowError("partition_size must be a positive integer")
        self.stages = stages
        self.name = name
        self.partition_size = partition_size

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = " -> ".join(stage.op for stage in self.stages)
        return f"Pipeline({self.name!r}: {ops})"

    # ------------------------------------------------------------- validation
    def validate(self, columns: Sequence[str] | Table) -> list[str]:
        """Check column dependencies statically; return the output columns.

        Walks the stages in order, tracking the available column set: every
        stage must find the columns it reads (raising :class:`FlowError`
        naming the stage otherwise) and contributes the columns it writes.
        """
        if isinstance(columns, Table):
            columns = columns.schema.names
        available = list(columns)
        for index, stage in enumerate(self.stages):
            missing = [c for c in stage.reads() if c not in available]
            if missing:
                raise FlowError(
                    f"stage {index} ({stage.op}) reads column(s) "
                    f"{missing} not available at that point; "
                    f"available: {available}"
                )
            available = stage.columns_after(available)
        return available

    def lineage(self, columns: Sequence[str] | Table) -> dict[str, list[str]]:
        """Column provenance: which stages wrote each output column.

        Input columns start with a ``"source"`` entry; every stage that
        writes a column appends ``"<index>:<op>"``.  Columns projected away
        by a ``Select`` drop out of the result.
        """
        if isinstance(columns, Table):
            columns = columns.schema.names
        self.validate(columns)
        provenance: dict[str, list[str]] = {c: ["source"] for c in columns}
        available = list(columns)
        for index, stage in enumerate(self.stages):
            for column in stage.writes():
                provenance.setdefault(column, []).append(f"{index}:{stage.op}")
            available = stage.columns_after(available)
        return {c: provenance[c] for c in available}

    # -------------------------------------------------------------- execution
    def run(
        self,
        table: Table,
        client: "Client | None" = None,
        *,
        batch_size: int = 64,
        seed: int = 0,
    ) -> FlowResult:
        """Execute over ``table`` through a client (default: a local stack).

        The pipeline is compiled stage-by-stage into deduplicated spec
        batches and streamed through ``client.submit_many`` — a local client
        runs them on the in-process engine, a remote client ships the same
        batches to the TCP service, and a cluster client fans each wave out
        across its shards; in every case the pipeline sees identical
        request/response semantics.

        Args:
            table: The input table (validated statically before any LLM call).
            client: Any :class:`~repro.api.Client`; when omitted a local
                stack is assembled with ``seed`` and closed afterwards.
            batch_size: Specs per ``submit_many`` round.
            seed: Seed of the implicit local stack (ignored with ``client``).

        Returns:
            A :class:`~repro.flow.executor.FlowResult`: the processed table,
            table-level answers, and the execution report.

        Raises:
            FlowError: When a stage reads a missing column (statically) or
                any submitted spec fails (naming the stage).
        """
        owns_client = client is None
        if client is None:
            from ..api.client import Client

            client = Client.local(seed=seed)
        try:
            executor = FlowExecutor(client.submit_many, batch_size=batch_size)
            return executor.run(self, table)
        finally:
            if owns_client:
                client.close()

    def submit(self, table: Table, client: "Client") -> FlowResult:
        """Ship the whole pipeline as one request; the service executes it.

        This is the plan-level submission path: a single
        :class:`~repro.api.pipeline_spec.PipelineSpec` travels over the wire
        and the serving side runs the full streaming executor next to its
        engine — one round trip regardless of table size or stage count.
        """
        from ..api.pipeline_spec import PipelineSpec
        from .executor import FlowReport

        pk = table.schema.primary_key()
        spec = PipelineSpec(
            rows=table.to_dicts(),
            stages=[stage.to_payload() for stage in self.stages],
            table_name=table.name,
            primary_key=pk.name if pk is not None else None,
            partition_size=self.partition_size,
            name=self.name,
        )
        result = client.submit(spec)
        payload = result.answer if isinstance(result.answer, Mapping) else {}
        rows = list(payload.get("rows", []))
        columns = list(payload.get("columns", []))
        if columns:  # the service echoes the output schema alongside the rows
            out = Table(table.name, [str(c) for c in columns])
            for row in rows:
                out.append({c: row.get(c) for c in columns})
        elif rows:  # older service: infer the schema from the rows
            out = Table.from_dicts(table.name, rows)
        else:
            out = Table(table.name, table.schema)
        return FlowResult(
            table=out,
            answers=dict(payload.get("answers", {})),
            report=FlowReport.from_payload(payload.get("report", {})),
        )

    # -------------------------------------------------------------- wire form
    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "stages": [stage.to_payload() for stage in self.stages],
        }
        if self.partition_size is not None:
            payload["partition_size"] = self.partition_size
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Pipeline":
        if not isinstance(payload, Mapping):
            raise FlowError("pipeline payload must be an object")
        stages_payload = payload.get("stages")
        if not isinstance(stages_payload, Sequence) or isinstance(
            stages_payload, (str, bytes)
        ) or not stages_payload:
            raise FlowError("pipeline payload needs a non-empty 'stages' list")
        stages = [operator_from_payload(stage) for stage in stages_payload]
        size = payload.get("partition_size")
        if size is not None and (not isinstance(size, int) or size < 1):
            raise FlowError("partition_size must be a positive integer")
        return cls(
            stages,
            name=str(payload.get("name", "flow")),
            partition_size=size,
        )


__all__ = ["Pipeline"]
