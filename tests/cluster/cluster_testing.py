"""Shared helpers for the cluster tests.

The parity and affinity tests need execution to be a *pure function of each
spec* so that sharding (which changes call order and splits the backend into
N independent stacks) cannot change any answer.  The established determinism
regime from the flow property tests is reused:

* :class:`PromptPureLLM` — the completion depends only on the prompt text
  (no noise stream, no call-order state);
* ``RNG_FREE`` — retrieval sampling disabled
  (``n_meta_attributes=0`` / ``top_k_instances=0``), so the pipeline's own
  rng is never consumed.

Under this regime, cluster results must be bit-identical to a single
engine's ``run_many`` at any worker count — the cluster acceptance contract.
"""

from __future__ import annotations


from repro.api import (
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ExtractionSpec,
    ImputationSpec,
    JoinDiscoverySpec,
    TableQASpec,
    TransformationSpec,
)
from repro.core import UniDMConfig
from repro.llm.base import LanguageModel

#: Pipeline config whose rng is never consumed (see module docstring).
RNG_FREE = UniDMConfig(n_meta_attributes=0, top_k_instances=0)


class PromptPureLLM(LanguageModel):
    """Deterministic backend: the completion depends only on the prompt."""

    name = "prompt-pure"

    def _complete_text(self, prompt: str) -> str:
        if "Yes or No" in prompt:
            return "Yes" if len(prompt) % 2 else "No"
        return f"w{sum(ord(c) for c in prompt) % 89}"


def make_mixed_specs(n_rounds: int = 4) -> list:
    """A mixed workload across all seven task types, ``n_rounds`` variations.

    Specs differ across rounds (distinct values/targets), so consistent
    hashing spreads them over several workers rather than one hot shard.
    """
    cities = ["Milan", "Turin", "Genoa", "Parma", "Padua", "Trieste", "Verona"]
    specs: list = []
    for round_index in range(n_rounds):
        city = cities[round_index % len(cities)]
        specs.extend(
            [
                TransformationSpec(
                    value=f"199904{round_index + 10:02d}",
                    examples=[["20000101", "2000-01-01"]],
                ),
                ImputationSpec(
                    rows=[
                        {"city": "Florence", "country": "Italy"},
                        {"city": "Madrid", "country": "Spain"},
                    ],
                    target={"city": city},
                    attribute="country",
                ),
                ExtractionSpec(
                    document=f"{city} hosted game {round_index} last night.",
                    attribute="city",
                ),
                TableQASpec(
                    rows=[{"player": f"player-{round_index}", "team": "Bulls"}],
                    question="which team?",
                ),
                EntityResolutionSpec(
                    record_a={"name": f"item {round_index}", "brand": "apple"},
                    record_b={"name": f"Item {round_index}", "brand": "Apple"},
                ),
                ErrorDetectionSpec(
                    rows=[
                        {"city": "Rome", "zip": "00100"},
                        {"city": "Pisa", "zip": "56100"},
                    ],
                    target={"city": "Rome", "zip": f"x{round_index}"},
                    attribute="zip",
                ),
                JoinDiscoverySpec(
                    table_a={
                        "name": "rank",
                        "rows": [{"country_abrv": f"C{round_index}", "rank": 1}],
                    },
                    column_a="country_abrv",
                    table_b={
                        "name": "geo",
                        "rows": [{"ISO": f"C{round_index}", "continent": "Europe"}],
                    },
                    column_b="ISO",
                ),
            ]
        )
    return specs


def fingerprint(results) -> list[tuple]:
    """The bit-parity projection of a result list (wire-visible fields)."""
    return [
        (r.answer, r.raw, r.task_type, r.tokens, r.calls, r.error is None)
        for r in results
    ]
