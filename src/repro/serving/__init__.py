"""Batched async serving layer: execution engine, micro-batcher, persistence.

The pipeline modules under :mod:`repro.core` know how to solve *one* task;
this package turns them into a serving system: the
:class:`~repro.serving.engine.ExecutionEngine` runs many tasks concurrently
with bounded workers, the :class:`~repro.serving.batcher.MicroBatcher`
coalesces their same-kind prompts into batched LLM calls, the
:class:`~repro.serving.cache.PersistentCache` makes warmed reruns near-free
across processes, and :mod:`~repro.serving.service` answers JSON task
requests over stdin or a socket, speaking the versioned protocol of
:mod:`repro.api.protocol` (v2 envelopes natively, flat v1 requests still
accepted) across all seven task types of the unified framework.
"""

from .batcher import BatcherStats, MicroBatcher
from .cache import PersistentCache, prompt_key
from .engine import EngineConfig, EngineReport, ExecutionEngine
from .service import (
    ServingService,
    build_service,
    run_pipeline_spec,
    serve_lines,
    start_line_server,
)
from .stages import OrderedGate, drive_async, execute_task
from .transport import (
    FRAME_BINARY,
    FRAME_LINES,
    MAX_FRAME_BYTES,
    FrameError,
    start_wire_server,
)

__all__ = [
    "BatcherStats",
    "FRAME_BINARY",
    "FRAME_LINES",
    "FrameError",
    "MAX_FRAME_BYTES",
    "EngineConfig",
    "EngineReport",
    "ExecutionEngine",
    "MicroBatcher",
    "OrderedGate",
    "PersistentCache",
    "ServingService",
    "build_service",
    "drive_async",
    "execute_task",
    "prompt_key",
    "run_pipeline_spec",
    "serve_lines",
    "start_line_server",
    "start_wire_server",
]
