"""Load-driven elasticity — a policy object that resizes the cluster.

The :class:`Autoscaler` closes the control loop the router's live
:meth:`~repro.cluster.router.Router.add_worker` /
:meth:`~repro.cluster.router.Router.remove_worker` primitives enable: it
watches the router's rolling observability windows (the
:class:`~repro.obs.timeseries.TimeSeriesSampler` inside the router's health
monitor — the same series ``repro top`` renders) and scales the worker count
between ``min_workers`` and ``max_workers``.

The policy is deliberately boring — mean inflight per live worker over a
short window, compared against hysteresis thresholds, with a cooldown after
every resize:

* ``load >= scale_up_at``  and room below ``max_workers`` → **join** one
  worker (hash-minimal shard migration warms it before it takes traffic);
* ``load <= scale_down_at`` and slack above ``min_workers`` → **drained
  leave** of the highest-numbered worker (its shard entries migrate to the
  survivors, so nothing is recomputed later);
* anything in between → hold.

``scale_down_at`` must sit well below ``scale_up_at`` — the gap is the
hysteresis band that keeps the cluster from flapping.  Every decision is
emitted as an ``autoscale.decision`` event and counted under
``cluster.autoscale.up`` / ``cluster.autoscale.down``.

Drive it from a daemon thread (:meth:`start`/:meth:`stop`) in ``repro serve
--cluster --autoscale``, or deterministically from tests via :meth:`tick`
with an injected ``clock``.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from ..obs.events import emit_event
from ..obs.metrics import MetricsRegistry, get_default_registry
from ..obs.timeseries import parse_window
from .workers import ClusterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .router import Router

__all__ = ["Autoscaler"]


class Autoscaler:
    """Scales a router between ``min_workers`` and ``max_workers``.

    Parameters
    ----------
    router:
        The elastic router to resize (needs a worker factory for joins).
    min_workers / max_workers:
        Inclusive bounds on the live worker count.
    scale_up_at / scale_down_at:
        Mean inflight specs *per live worker* (over ``window``) above which
        the cluster grows, and below which it shrinks.  The gap between
        them is the hysteresis band.
    window:
        Rolling window label (``"10s"``/``"1m"``/...) the load signal is
        averaged over.
    cooldown:
        Minimum seconds between resizes — lets migrations and the load
        signal settle before the next decision.
    clock:
        Monotonic seconds source (injected by deterministic tests).
    """

    def __init__(
        self,
        router: "Router",
        *,
        min_workers: int = 1,
        max_workers: int = 8,
        scale_up_at: float = 4.0,
        scale_down_at: float = 0.5,
        window: str = "10s",
        cooldown: float = 30.0,
        interval: float = 2.0,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if scale_down_at >= scale_up_at:
            raise ValueError(
                "scale_down_at must be below scale_up_at (hysteresis band)"
            )
        self.router = router
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.scale_up_at = scale_up_at
        self.scale_down_at = scale_down_at
        self.window = window
        self._window_seconds = parse_window(window)
        self.cooldown = cooldown
        self.interval = interval
        self._clock = clock
        metrics = metrics or get_default_registry()
        self._m_up = metrics.counter("cluster.autoscale.up")
        self._m_down = metrics.counter("cluster.autoscale.down")
        self._last_resize: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ signal
    def load(self) -> float | None:
        """Mean inflight specs per live worker over the rolling window.

        ``None`` until the sampler has enough history (the policy holds).
        """
        sampler = self.router.monitor.sampler
        stats = sampler.gauge_stats("router.inflight", self._window_seconds)
        if stats is None:
            return None
        live = max(len(self.router.live_workers), 1)
        return stats["mean"] / live

    # ------------------------------------------------------------------ policy
    def decide(self) -> str | None:
        """``"up"``, ``"down"`` or ``None`` — pure policy, no side effects."""
        load = self.load()
        if load is None:
            return None
        live = len(self.router.live_workers)
        if load >= self.scale_up_at and live < self.max_workers:
            return "up"
        if load <= self.scale_down_at and live > self.min_workers:
            return "down"
        return None

    def tick(self) -> str | None:
        """One control-loop pass: sample, decide, maybe resize.

        Returns the action taken (``"up"``/``"down"``) or ``None``.
        Honors the cooldown; a failed resize (e.g. the ring refuses to
        shrink below one worker) is swallowed after an event so the loop
        stays alive.
        """
        # Make sure the window reflects the present even when sampling is
        # driven by an injected clock (tests) or a slow monitor interval.
        self.router.monitor.sampler.ensure_fresh()
        now = self._clock()
        if self._last_resize is not None and now - self._last_resize < self.cooldown:
            return None
        action = self.decide()
        if action is None:
            return None
        load = self.load()
        try:
            if action == "up":
                worker_id = self.router.add_worker()
                self._m_up.inc()
            else:
                worker_id = self._pick_victim()
                self.router.remove_worker(worker_id, drain=True)
                self._m_down.inc()
        except ClusterError as exc:
            emit_event("autoscale.decision", action=action, error=str(exc))
            self._last_resize = now  # still back off before retrying
            return None
        self._last_resize = now
        emit_event(
            "autoscale.decision",
            action=action,
            worker=worker_id,
            load=round(load, 3) if load is not None else None,
            workers=len(self.router.live_workers),
        )
        return action

    def _pick_victim(self) -> str:
        """The worker a scale-down drains: the highest-numbered live one.

        Removing the most recent joiner keeps the id space dense, so the
        next scale-up reuses the id (and its still-warm shard directory).
        """
        return max(self.router.live_workers)

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Run :meth:`tick` on a daemon thread every ``interval`` seconds."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.tick()
                except Exception:  # pragma: no cover - defensive
                    # The control loop must survive transient errors; the
                    # next interval retries with fresh signals.
                    continue

        self._thread = threading.Thread(
            target=run, daemon=True, name="repro-autoscaler"
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Autoscaler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
