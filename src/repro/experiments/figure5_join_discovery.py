"""Figure 5 — join discovery precision / recall / F1 vs. decision threshold.

Both methods produce a joinability *score* per column pair; sweeping the
decision threshold from 0.4 to 0.9 traces the curves of Figure 5.  WarpGate's
score is the cosine similarity of column embeddings, so it only reflects
surface value overlap; UniDM's score is the fraction of repeated pipeline runs
(over different sampled column values) that answer "joinable", which also
captures semantic links (abbreviations, codes) the LLM knows about — the
source of its advantage at every threshold.
"""

from __future__ import annotations

import numpy as np

from ..baselines import WarpGateJoinDiscovery
from ..core.config import UniDMConfig
from ..core.tasks.join_discovery import JoinDiscoveryTask
from ..datasets import load_dataset
from ..eval import confusion, format_table
from .common import make_llm
from ..core.pipeline import UniDM

#: Thresholds swept in the paper's Figure 5.
THRESHOLDS = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: Qualitative reference from Figure 5: UniDM's F1 stays in the high 0.8s
#: across thresholds while WarpGate degrades, especially at high thresholds.
PAPER_REFERENCE = {
    "UniDM": "F1 ~0.85-0.90 across thresholds",
    "WarpGate": "F1 ~0.75-0.85, dropping as the threshold rises",
}

DATASET = "nextiajd"


def unidm_scores(dataset, seed: int = 0, n_probes: int = 3, max_tasks: int | None = None) -> tuple[list[float], list[bool]]:
    """Joinability scores: fraction of probe runs answering "joinable"."""
    tasks = dataset.tasks if max_tasks is None else dataset.tasks[:max_tasks]
    labels = dataset.ground_truth if max_tasks is None else dataset.ground_truth[:max_tasks]
    scores: list[float] = []
    llm = make_llm(dataset, seed=seed + 2)
    pipeline = UniDM(llm, UniDMConfig.full(seed=seed))
    for index, task in enumerate(tasks):
        votes = 0
        for probe in range(n_probes):
            probe_task = JoinDiscoveryTask(
                task.table_a,
                task.column_a,
                task.table_b,
                task.column_b,
                n_sample_values=task.n_sample_values,
                n_sample_records=task.n_sample_records,
                seed=task.seed + 7919 * probe,
            )
            if pipeline.run(probe_task).value:
                votes += 1
        scores.append(votes / n_probes)
        _ = index
    return scores, list(labels)


def warpgate_scores(dataset, seed: int = 0, max_tasks: int | None = None) -> tuple[list[float], list[bool]]:
    method = WarpGateJoinDiscovery(seed=seed)
    bench = dataset if max_tasks is None else dataset.subset(max_tasks, seed=0)
    return method.score_dataset(bench), list(bench.ground_truth)


def curve_rows(method: str, scores: list[float], labels: list[bool]) -> list[dict]:
    rows = []
    scores_array = np.asarray(scores, dtype=float)
    for threshold in THRESHOLDS:
        predictions = (scores_array >= threshold).tolist()
        matrix = confusion(predictions, labels)
        rows.append(
            {
                "method": method,
                "threshold": threshold,
                "precision": 100 * matrix.precision,
                "recall": 100 * matrix.recall,
                "f1": 100 * matrix.f1,
            }
        )
    return rows


def run(seed: int = 0, max_tasks: int | None = None, n_probes: int = 3) -> list[dict]:
    dataset = load_dataset(DATASET, seed=seed)
    rows: list[dict] = []
    uni_scores, uni_labels = unidm_scores(dataset, seed=seed, n_probes=n_probes, max_tasks=max_tasks)
    rows.extend(curve_rows("UniDM", uni_scores, uni_labels))
    wg_scores, wg_labels = warpgate_scores(dataset, seed=seed, max_tasks=max_tasks)
    rows.extend(curve_rows("WarpGate", wg_scores, wg_labels))
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["method", "threshold", "precision", "recall", "f1"],
        title="Figure 5 — Join discovery precision/recall/F1 vs threshold (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
