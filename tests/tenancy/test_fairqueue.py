"""Weighted-fair queue semantics, including the PriorityLock-parity property.

The load-bearing property: with every item on one tenant, the fair queue's
dequeue order is bit-identical to the ``(-priority, arrival)`` heap that
:class:`repro.obs.PriorityLock` uses — so turning tenancy on cannot change
the scheduling any untagged deployment observes.
"""

import heapq
import itertools
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.tenancy import FairBlockingQueue, WeightedFairLock, WeightedFairQueue


# ----------------------------------------------------------------- fair queue
def test_single_tenant_pops_by_priority_then_arrival():
    queue = WeightedFairQueue()
    for tag, priority in [("a", 0), ("b", 5), ("c", 0), ("d", 5)]:
        queue.push(tag, priority=priority)
    assert [queue.pop() for _ in range(4)] == ["b", "d", "a", "c"]


def test_weights_split_service_proportionally():
    queue = WeightedFairQueue()
    for index in range(30):
        queue.push(("heavy", index), tenant="heavy", weight=2.0)
        queue.push(("light", index), tenant="light", weight=1.0)
    first = [queue.pop()[0] for _ in range(12)]
    # Per unit of virtual time the weight-2 tenant drains twice the cost.
    assert first.count("heavy") == 8
    assert first.count("light") == 4


def test_priority_breaks_ties_within_a_tenant_only():
    queue = WeightedFairQueue()
    queue.push("a-low", tenant="a", priority=0)
    queue.push("a-high", tenant="a", priority=9)
    queue.push("b-high", tenant="b", priority=9)
    # Tenant a's head is its high-priority item; tenant b still gets its
    # fair share instead of being outbid by the priority alone.
    order = [queue.pop() for _ in range(3)]
    assert order[0] == "a-high"
    assert set(order[1:]) == {"a-low", "b-high"}
    assert order.index("a-low") > order.index("a-high")


def test_idle_tenant_earns_no_credit():
    queue = WeightedFairQueue()
    # Tenant a drains a long backlog, advancing virtual time far ahead.
    for index in range(10):
        queue.push(("a", index), tenant="a")
    for _ in range(10):
        queue.pop()
    # A late-arriving tenant bids at the *current* virtual time — it gets
    # its fair share from now on, not a catch-up burst for its idle past.
    for index in range(4):
        queue.push(("a", index), tenant="a")
        queue.push(("b", index), tenant="b")
    order = [queue.pop()[0] for _ in range(8)]
    assert order.count("b") == 4
    assert order[:2] != ["b", "b"] or order[2:4] != ["b", "b"]


def test_peek_matches_pop_and_empty_raises():
    queue = WeightedFairQueue()
    queue.push("x", tenant="a", weight=3.0)
    queue.push("y", tenant="b")
    assert queue.peek() == queue.pop()
    assert len(queue) == 1
    queue.pop()
    with pytest.raises(IndexError):
        queue.pop()
    with pytest.raises(IndexError):
        queue.peek()


def test_push_validation():
    queue = WeightedFairQueue()
    with pytest.raises(ValueError):
        queue.push("x", weight=0.0)
    with pytest.raises(ValueError):
        queue.push("x", cost=0.0)


# --------------------------------------------------- PriorityLock parity (SFQ)
@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(min_value=-5, max_value=5)),
            st.tuples(st.just("pop"), st.just(0)),
        ),
        max_size=60,
    )
)
def test_single_tenant_is_bit_identical_to_priority_heap(ops):
    """Interleaved pushes/pops on one tenant == the PriorityLock ticket heap."""
    fair = WeightedFairQueue()
    reference: list = []
    sequence = itertools.count()
    pushed = 0
    for op, priority in ops:
        if op == "push":
            item = next(sequence)
            fair.push(item, priority=priority)
            heapq.heappush(reference, (-priority, item))
            pushed += 1
        elif reference:
            assert fair.pop() == heapq.heappop(reference)[1]
    while reference:
        assert fair.pop() == heapq.heappop(reference)[1]
    assert len(fair) == 0


# ------------------------------------------------------------------ fair lock
def test_fair_lock_orders_default_tenant_like_priority_lock():
    lock = WeightedFairLock()
    order = []
    lock.acquire()

    def waiter(priority, tag):
        lock.acquire(priority)
        order.append(tag)
        lock.release()

    threads = []
    for priority, tag in [(0, "low-1"), (0, "low-2"), (5, "high"), (2, "mid")]:
        thread = threading.Thread(target=waiter, args=(priority, tag))
        thread.start()
        threads.append(thread)
        time.sleep(0.05)  # deterministic arrival order
    lock.release()
    for thread in threads:
        thread.join()
    assert order == ["high", "mid", "low-1", "low-2"]


def test_fair_lock_release_requires_holder():
    with pytest.raises(RuntimeError):
        WeightedFairLock().release()


def test_fair_lock_context_manager():
    lock = WeightedFairLock()
    with lock:
        pass
    with lock.hold(priority=3, tenant="t", weight=2.0, cost=4.0):
        pass


# -------------------------------------------------------------- blocking queue
def test_blocking_queue_serves_final_item_after_draining():
    queue = FairBlockingQueue()
    stop = object()
    queue.put_final(stop)
    queue.put("work-1")
    queue.put("work-2", priority=5)
    assert queue.get() == "work-2"
    assert queue.get() == "work-1"
    assert queue.get() is stop


def test_blocking_queue_bounded_put_blocks_until_get():
    queue = FairBlockingQueue(maxsize=1)
    queue.put("first")
    unblocked = threading.Event()

    def producer():
        queue.put("second")
        unblocked.set()

    thread = threading.Thread(target=producer)
    thread.start()
    try:
        assert not unblocked.wait(0.15), "put must block while the queue is full"
        assert queue.get() == "first"
        assert unblocked.wait(2.0), "put must resume once capacity frees up"
        assert queue.get() == "second"
    finally:
        thread.join()


def test_blocking_queue_dequeues_weighted_fair():
    queue = FairBlockingQueue()
    for index in range(6):
        queue.put(("big", index), tenant="big", weight=3.0)
        queue.put(("small", index), tenant="small", weight=1.0)
    first = [queue.get()[0] for _ in range(8)]
    assert first.count("big") == 6
    assert first.count("small") == 2
