"""Experiment modules — one per table / figure of the paper's evaluation.

Each module exposes ``run(seed, max_tasks) -> list[dict]`` (the table rows),
``PAPER_RESULTS`` (the numbers reported in the paper, for side-by-side
comparison) and ``main()`` (print the formatted table).  The benchmark harness
in ``benchmarks/`` calls ``run`` with reduced task counts; the full tables in
EXPERIMENTS.md come from running ``main()`` unrestricted.
"""

from . import (
    figure5_join_discovery,
    table1_imputation,
    table2_transformation,
    table3_error_detection,
    table4_entity_resolution,
    table5_finetune,
    table6_llm_variants,
    table7_tokens,
    table8_9_ablation_imputation,
    table10_ablation_transformation,
    table11_extraction,
)
from .common import UniDMMethod, make_fm, make_llm, make_unidm, result_row

ALL_EXPERIMENTS = {
    "table1": table1_imputation,
    "table2": table2_transformation,
    "table3": table3_error_detection,
    "table4": table4_entity_resolution,
    "table5": table5_finetune,
    "table6": table6_llm_variants,
    "table7": table7_tokens,
    "table8_9": table8_9_ablation_imputation,
    "table10": table10_ablation_transformation,
    "table11": table11_extraction,
    "figure5": figure5_join_discovery,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "UniDMMethod",
    "make_fm",
    "make_llm",
    "make_unidm",
    "result_row",
    "figure5_join_discovery",
    "table1_imputation",
    "table2_transformation",
    "table3_error_detection",
    "table4_entity_resolution",
    "table5_finetune",
    "table6_llm_variants",
    "table7_tokens",
    "table8_9_ablation_imputation",
    "table10_ablation_transformation",
    "table11_extraction",
]
