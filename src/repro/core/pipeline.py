"""The UniDM pipeline — Algorithm 1 of the paper.

Given a task instance (one of the adapters in :mod:`repro.core.tasks`), the
pipeline runs the three main steps end-to-end:

1. automatic context retrieval (meta-wise ``p_rm`` then instance-wise ``p_ri``),
2. context data parsing (``serialize()`` then ``p_dp``),
3. target prompt construction (``p_cq`` producing the cloze prompt ``p_as``),

and finally queries the LLM with the constructed prompt to obtain the answer
``Y``.  Every step can be disabled through :class:`~repro.core.config.UniDMConfig`
for the ablation studies, and per-query token usage is tracked for the cost
comparison of Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..llm.base import LanguageModel, UsageDelta
from .cloze import TargetPromptBuilder
from .config import UniDMConfig
from .parsing import ContextParser, ParsedContext
from .plan import Plan, drive
from .retrieval import ContextRetriever, RetrievedContext
from .tasks.base import Task
from .types import ManipulationResult, PromptTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports core)
    from ..serving.engine import ExecutionEngine


class UniDM:
    """Unified Data Manipulation pipeline over a pluggable language model."""

    def __init__(self, llm: LanguageModel, config: UniDMConfig | None = None):
        self.llm = llm
        self.config = config or UniDMConfig()
        self.retriever = ContextRetriever(llm, self.config)
        self.parser = ContextParser(llm, self.config)
        self.prompt_builder = TargetPromptBuilder(llm, self.config)
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ running
    def run(self, task: Task) -> ManipulationResult:
        """Solve one task instance (Algorithm 1)."""
        trace = PromptTrace()
        usage_before = self.llm.usage.snapshot()

        context = self._build_context(task, trace)
        target = drive(self.plan_target(task, context.text, trace), self.llm)
        completion = self.llm.complete(target.text, kind="answer")
        trace.answer = completion.text

        usage = self.llm.usage.delta_since(usage_before)
        return self.finish(task, context, completion.text, trace, usage)

    def run_many(
        self,
        tasks: Iterable[Task],
        engine: "ExecutionEngine | None" = None,
    ) -> list[ManipulationResult]:
        """Solve a sequence of task instances.

        Execution is delegated to the serving
        :class:`~repro.serving.engine.ExecutionEngine`.  Without an explicit
        ``engine`` a sequential one (one worker, batch size 1) is used, which
        issues exactly the same LLM calls in exactly the same order as running
        :meth:`run` in a loop; pass a concurrent engine to overlap tasks and
        micro-batch their same-kind prompts.

        When called from inside a running event loop (where the engine's
        ``asyncio.run`` cannot nest), the default path falls back to the
        equivalent plain loop over :meth:`run`.
        """
        from ..serving.engine import ExecutionEngine  # local: serving imports core

        if engine is None:
            import asyncio

            try:
                asyncio.get_running_loop()
            except RuntimeError:
                engine = ExecutionEngine.sequential()
            else:
                return [self.run(task) for task in tasks]
        return engine.run(self, tasks)

    # ------------------------------------------------------------- context assembly
    def _build_context(self, task: Task, trace: PromptTrace) -> "_Context":
        pre = drive(self.plan_retrieval(task, trace), self.llm)
        return drive(self.plan_context(pre, trace), self.llm)

    # ----------------------------------------------------------------- plan stages
    # Algorithm 1 decomposed into sans-IO stages (see repro.core.plan).  The
    # sync path above and the async serving engine both execute these exact
    # generators; the split between plan_retrieval (draws from the pipeline
    # rng) and the later stages (pure functions of their inputs) is what the
    # engine's ordered-retrieval gate relies on for determinism.
    def plan_retrieval(self, task: Task, trace: PromptTrace) -> Plan:
        """Stage 1+2: context retrieval (``p_rm`` / ``p_ri``); consumes the rng."""
        # Context supplied by the task itself (transformation examples,
        # documents for information extraction) bypasses retrieval.
        raw_text = task.context_text()
        if raw_text is not None:
            return _PreContext(raw_text=raw_text)
        rows = task.context_rows()
        if rows is not None:
            return _PreContext(rows=rows)
        retrieved = yield from self.retriever.plan(task, self._rng, trace)
        return _PreContext(retrieved=retrieved)

    def plan_context(self, pre: "_PreContext", trace: PromptTrace) -> Plan:
        """Stage 3: context data parsing (``p_dp``)."""
        if pre.raw_text is not None:
            parsed = self.parser.parse_raw_text(pre.raw_text, trace)
            return _Context(text=parsed.text, attributes=[])
        if pre.rows is not None:
            parsed = yield from self.parser.plan_rows(pre.rows, trace)
            return _Context(text=parsed.text, attributes=[])
        retrieved = pre.retrieved
        if retrieved is None or retrieved.is_empty:
            attributes = [] if retrieved is None else retrieved.attributes
            return _Context(text="", attributes=attributes)
        parsed = yield from self.parser.plan_records(
            retrieved.records, retrieved.attributes, trace
        )
        return _Context(text=parsed.text, attributes=retrieved.attributes)

    def plan_target(self, task: Task, context_text: str, trace: PromptTrace) -> Plan:
        """Stage 4: target prompt construction (``p_cq``)."""
        return (yield from self.prompt_builder.plan(task, context_text, trace))

    def finish(
        self,
        task: Task,
        context: "_Context",
        answer_text: str,
        trace: PromptTrace,
        usage: UsageDelta,
    ) -> ManipulationResult:
        """Assemble the result record once the answer completion is in."""
        return ManipulationResult(
            task_type=task.task_type,
            raw_answer=answer_text,
            value=task.parse_answer(answer_text),
            query=task.query(),
            context_text=context.text,
            selected_attributes=list(getattr(context, "attributes", [])) or [],
            trace=trace,
            usage=usage,
        )


class _Context:
    """Internal carrier of the assembled context."""

    __slots__ = ("text", "attributes")

    def __init__(self, text: str, attributes: Sequence[str]):
        self.text = text
        self.attributes = list(attributes)


@dataclass
class _PreContext:
    """Outcome of the retrieval stage, before context parsing.

    Exactly one of the three fields is populated: raw document text, task-
    supplied rows, or automatically retrieved records.
    """

    raw_text: str | None = None
    rows: list[list[tuple[str, str]]] | None = None
    retrieved: RetrievedContext | None = None


def solve(
    task: Task,
    llm: LanguageModel,
    config: UniDMConfig | None = None,
) -> ManipulationResult:
    """One-shot convenience wrapper: build a pipeline and run a single task."""
    return UniDM(llm, config).run(task)


__all__ = ["UniDM", "solve", "ParsedContext"]
