"""The cluster router — sharded serving with cache affinity.

:class:`Router` fans :class:`~repro.api.specs.TaskSpec` batches out over N
workers (threads in-process, or spawned ``python -m repro serve`` processes
speaking the v2 TCP protocol).  Placement is a consistent-hash ring over the
spec's canonical wire form (:mod:`repro.cluster.hashing`), so:

* the same spec always lands on the same worker — its completions live in
  that worker's in-memory LRU and on-disk
  :class:`~repro.serving.cache.PersistentCache` shard, and cache hits never
  cross a shard boundary;
* shard contents stay disjoint at the spec level — a worker only ever warms
  prompts arising from specs it owns, so N workers hold N shards of the
  cache, not N copies.  (Two *different* specs on different workers can
  still issue one identical sub-prompt; that is duplicated work across
  shards, not a correctness problem, and it is rare because whole specs —
  the unit the flow planner dedups — never split.)

Per-worker batches are submitted concurrently; each
:class:`~repro.cluster.workers.ThreadWorker` applies its own bounded-queue
backpressure.  When a worker dies mid-batch (:class:`WorkerDeadError`), the
router removes it from the ring and requeues the affected specs onto the
surviving workers — consistent hashing keeps every other spec exactly where
its cache is.

Determinism: each worker is a complete serving stack whose engine preserves
the ordered-retrieval guarantee, so under the documented determinism regime
(a warmed cache, or an execution that is a pure function of each spec — see
:mod:`repro.serving.engine`) cluster results are bit-identical to a single
engine's ``run_many`` at any worker count.  ``tests/cluster/test_parity.py``
enforces this.

Pipeline requests (:class:`~repro.api.pipeline_spec.PipelineSpec`) do not
hash to one worker: the router runs the streaming
:class:`~repro.flow.executor.FlowExecutor` itself and fans the plan's spec
batches out across the ring, so a whole-table pipeline is cluster-parallel
wave by wave.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..api.pipeline_spec import PipelineSpec
from ..api.protocol import (
    PROTOCOL_VERSION,
    decode_response,
    encode_error,
    encode_request,
    encode_success,
)
from ..api.results import TaskResult
from ..api.specs import TaskSpec
from ..api.stats_spec import StatsSpec
from ..obs.admission import AdmissionController
from ..obs.events import emit_event
from ..obs.export import get_default_exemplars
from ..obs.metrics import MetricsRegistry, get_default_registry
from ..obs.slo import HealthMonitor, SLOSpec
from ..obs.span import Span, remote_span, span
from ..serving.cache import PersistentCache
from ..tenancy import TenancyController, TenantRegistry
from .hashing import HashRing, minimal_moved_keys, spec_key
from .stats import ClusterStats, WorkerStats
from .workers import ClusterError, SubprocessWorker, ThreadWorker, Worker, WorkerDeadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import UniDMConfig
    from ..llm.base import LanguageModel

__all__ = ["Router"]


class Router:
    """Routes spec batches across workers by consistent hash of the spec.

    Parameters
    ----------
    workers:
        The shard workers (see :mod:`repro.cluster.workers`).  The router
        owns them: :meth:`close` closes every worker.
    replicas:
        Virtual nodes per worker on the hash ring.
    health_interval:
        Seconds between background liveness sweeps (a daemon thread pings
        every worker and un-rings the dead); ``None`` disables the sweep
        thread, leaving death detection to failed submissions.
    worker_factory:
        ``worker_id -> Worker`` callable used by :meth:`add_worker` (when
        no pre-built worker is passed) and :meth:`revive_worker`; the
        :meth:`local`/:meth:`spawn` constructors install one automatically.
    cache_dir:
        Base directory of per-worker persistent shards
        (``<cache_dir>/<worker_id>``); lets resizes migrate entries into a
        shard *before* its worker opens it, so joins start warm.
    faults:
        Optional :class:`repro.cluster.faults.FaultInjector` hook point —
        deterministic tests arm torn-migration faults through it.

    Raises
    ------
    ValueError
        If no workers are given or two workers share an id.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        *,
        replicas: int = 64,
        health_interval: float | None = 30.0,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        retry_after: float = 0.05,
        metrics: MetricsRegistry | None = None,
        tenants: TenantRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
        monitor_interval: float = 1.0,
        worker_factory: "Callable[[str], Worker] | None" = None,
        cache_dir: str | None = None,
        faults: Any = None,
    ):
        if not workers:
            raise ValueError("a cluster needs at least one worker")
        ids = [worker.worker_id for worker in workers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {ids}")
        self.workers: dict[str, Worker] = {w.worker_id: w for w in workers}
        self._ring = HashRing(ids, replicas=replicas)
        self._replicas = replicas
        self._worker_factory = worker_factory
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._faults = faults
        # The pool is sized generously so scale-ups never starve dispatch:
        # groups for distinct workers must be able to run concurrently.
        self._pool = ThreadPoolExecutor(
            max_workers=max(len(workers) * 2, 8), thread_name_prefix="repro-router"
        )
        self._lock = threading.Lock()
        self._routed: dict[str, int] = {wid: 0 for wid in ids}
        self._requeues = 0
        self._deaths = 0
        self._migrations = 0
        self._resizes = 0
        self._restarts = 0
        self.requests_served = 0
        #: Per-worker registration generation: revivals bump it so a stale
        #: failure report from before the restart cannot kill the new
        #: incarnation (or double-count the old death).
        self._generation: dict[str, int] = {wid: 0 for wid in ids}
        #: Worker ids draining out (un-ringed but still finishing work);
        #: readiness treats them as expected-absent, not dead.
        self._draining: set[str] = set()
        #: In-flight dispatch groups per worker; remove_worker's drain
        #: phase waits on this through _drain_cv.
        self._inflight_by: dict[str, int] = {wid: 0 for wid in ids}
        self._drain_cv = threading.Condition(self._lock)
        self._health_interval = health_interval
        self._closed = False
        self._metrics = metrics or get_default_registry()
        self._m_routed = {
            wid: self._metrics.counter(f"router.routed.{wid}") for wid in ids
        }
        self._m_requeued = self._metrics.counter("router.requeued")
        self._m_deaths = self._metrics.counter("router.deaths")
        self._m_inflight = self._metrics.gauge("router.inflight")
        self._m_migrations = self._metrics.counter("cluster.migrations")
        self._m_resizes = self._metrics.counter("cluster.resizes")
        self._m_restarts = self._metrics.counter("cluster.restarts")
        self._m_workers = self._metrics.gauge("cluster.workers")
        self._m_workers.set(len(ids))
        self.admission = AdmissionController(
            max_inflight,
            max_queue_depth,
            retry_after=retry_after,
            name="router.admission",
            metrics=self._metrics,
        )
        # Tenancy is enforced once, here at the front door; worker services
        # run tenancy-free so a spec is never double-charged.  The claimed
        # tenant still rides every worker-bound envelope (with its weight)
        # so thread workers dequeue weighted-fair across tenants.
        self.tenancy = (
            TenancyController(tenants, retry_after=retry_after, metrics=self._metrics)
            if tenants is not None
            else None
        )
        # Readiness in cluster mode additionally requires every *expected*
        # worker alive.  Draining workers are expected-absent (a planned
        # leave must not flip /readyz), while a crashed worker keeps
        # readiness down until the Supervisor revives it.
        self.monitor = HealthMonitor(
            registry=self._metrics,
            slos=slos,
            interval=monitor_interval,
            admission=self.admission,
            workers_alive=lambda: (
                len(self.live_workers),
                len(self.workers) - len(self._draining),
            ),
        )
        # Background health sweep: pings every worker each interval and
        # un-rings the dead, so gray failures are caught between submits
        # too.  close() joins this thread.
        self._sweep_stop = threading.Event()
        self._sweep_thread: threading.Thread | None = None
        if health_interval is not None:
            self._sweep_thread = threading.Thread(
                target=self._sweep_loop, name="repro-router-sweep", daemon=True
            )
            self._sweep_thread.start()

    # ------------------------------------------------------------ constructors
    @classmethod
    def local(
        cls,
        n_workers: int = 4,
        *,
        seed: int = 0,
        model: str | None = None,
        knowledge: Any = None,
        cache_dir: str | None = None,
        batch_size: int = 8,
        engine_workers: int = 8,
        queue_depth: int = 32,
        llm_factory: "Any | None" = None,
        config: "UniDMConfig | None" = None,
        replicas: int = 64,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        tenants: TenantRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
        health_interval: float | None = 30.0,
        worker_decorator: "Callable[[Worker], Worker] | None" = None,
        faults: Any = None,
    ) -> "Router":
        """A router over ``n_workers`` in-process thread workers.

        Every worker assembles its own serving stack (simulated LLM → cache
        → engine) with the same ``seed``; with ``cache_dir`` each worker's
        persistent shard lives in ``<cache_dir>/worker-NN``, so shards stay
        disjoint on disk and re-open warm on restart.  ``llm_factory`` (an
        ``int -> LanguageModel`` callable) substitutes a custom backend per
        worker — benchmarks and parity tests use it.  The installed worker
        factory reuses all of these knobs, so :meth:`add_worker` and
        :meth:`revive_worker` build identical stacks at runtime;
        ``worker_decorator`` wraps every built worker (fault injection).
        """
        from ..core.pipeline import UniDM
        from ..serving.service import build_service

        if n_workers < 1:
            raise ValueError("n_workers must be positive")

        def make_worker(worker_id: str) -> Worker:
            index = _worker_index(worker_id)
            shard_dir = (
                str(Path(cache_dir) / worker_id) if cache_dir is not None else None
            )
            service = build_service(
                model=model,
                seed=seed,
                cache_dir=shard_dir,
                batch_size=batch_size,
                workers=engine_workers,
                knowledge=knowledge,
                llm=llm_factory(index) if llm_factory is not None else None,
            )
            if config is not None:
                service.pipeline = UniDM(service.pipeline.llm, config)
            worker: Worker = ThreadWorker(worker_id, service, queue_depth=queue_depth)
            if worker_decorator is not None:
                worker = worker_decorator(worker)
            return worker

        workers = [make_worker(f"worker-{index:02d}") for index in range(n_workers)]
        return cls(
            workers,
            replicas=replicas,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            tenants=tenants,
            slos=slos,
            health_interval=health_interval,
            worker_factory=make_worker,
            cache_dir=cache_dir,
            faults=faults,
        )

    @classmethod
    def spawn(
        cls,
        n_workers: int = 4,
        *,
        seed: int = 0,
        model: str | None = None,
        cache_dir: str | None = None,
        batch_size: int = 8,
        engine_workers: int = 8,
        host: str = "127.0.0.1",
        replicas: int = 64,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        tenants: TenantRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
        health_interval: float | None = 30.0,
        worker_decorator: "Callable[[Worker], Worker] | None" = None,
        faults: Any = None,
    ) -> "Router":
        """A router over ``n_workers`` spawned ``repro serve`` subprocesses.

        Each child binds its own TCP port and owns the
        ``<cache_dir>/worker-NN`` shard directory; the router speaks the
        existing v2 line protocol to them, so a subprocess cluster exercises
        exactly the wire path a remote deployment would.  The installed
        worker factory respawns identical children for
        :meth:`add_worker`/:meth:`revive_worker`.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be positive")

        def make_worker(worker_id: str) -> Worker:
            shard_dir = (
                str(Path(cache_dir) / worker_id) if cache_dir is not None else None
            )
            worker: Worker = SubprocessWorker(
                worker_id,
                host=host,
                seed=seed,
                model=model,
                cache_dir=shard_dir,
                batch_size=batch_size,
                engine_workers=engine_workers,
            )
            if worker_decorator is not None:
                worker = worker_decorator(worker)
            return worker

        workers: list[Worker] = []
        try:
            for index in range(n_workers):
                workers.append(make_worker(f"worker-{index:02d}"))
        except Exception:
            for worker in workers:
                worker.close()
            raise
        return cls(
            workers,
            replicas=replicas,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            tenants=tenants,
            slos=slos,
            health_interval=health_interval,
            worker_factory=make_worker,
            cache_dir=cache_dir,
            faults=faults,
        )

    # ----------------------------------------------------------------- routing
    def worker_for(self, spec: TaskSpec) -> str:
        """The live worker id owning ``spec`` (affinity diagnostic)."""
        return self._ring.node_for(spec_key(spec))

    def submit_specs(
        self,
        specs: Sequence[TaskSpec],
        *,
        priority: int = 0,
        trace: str | None = None,
        span_parent: str | None = None,
        tenant: str | None = None,
    ) -> list[TaskResult]:
        """Execute specs across the cluster; results keep submission order.

        Specs are grouped by ring placement and the per-worker groups run
        concurrently.  A worker death mid-batch removes it from the ring and
        requeues only its group — every other spec stays on the worker
        holding its cache.  Per-item failures come back embedded as
        ``result.error`` (like :meth:`repro.api.Client.submit_many`).

        ``stats`` specs are answered from the router itself (aggregated
        snapshot), before admission control.  When tenancy is on, the whole
        call is charged against ``tenant``'s token bucket and inflight cap
        first — excess comes back as per-spec ``rate_limited`` errors — and
        then global admission applies: when the batch would exceed the
        pending bound, every spec of the batch comes back with an
        ``overloaded`` error instead of queueing.
        ``trace`` (one id for the batch) is forwarded on every worker-bound
        envelope so the id survives the extra hop; ``span_parent`` (the
        caller's span id) parents the router's ``router.submit`` span so the
        hop joins the caller's span tree.

        Raises
        ------
        ClusterError
            When every worker has died.
        """
        from ..serving.service import overloaded_error

        spec_list = list(specs)
        results: list[TaskResult | None] = [None] * len(spec_list)
        work: list[tuple[int, TaskSpec]] = []
        for index, spec in enumerate(spec_list):
            if isinstance(spec, StatsSpec):
                results[index] = TaskResult(
                    answer=self.stats_snapshot(
                        spec.prefix, reset=spec.reset, tenant=spec.tenant
                    ),
                    task_type="stats",
                    tenant=tenant,
                )
            else:
                work.append((index, spec))
        if work:
            resolved = (
                self.tenancy.resolve(tenant) if self.tenancy is not None else None
            )
            if self.tenancy is not None:
                info = self.tenancy.admit(resolved, len(work))
                if info is not None:
                    emit_event("tenancy.shed", trace=trace, **(info.details or {}))
                    for index, _ in work:
                        results[index] = TaskResult(
                            answer=None, error=info, tenant=tenant
                        )
                    with self._lock:
                        self.requests_served += len(spec_list)
                    return [result for result in results if result is not None]
            started = time.perf_counter()
            try:
                if not self.admission.try_acquire(len(work)):
                    info = overloaded_error(self.admission)
                    emit_event(
                        "admission.shed",
                        trace=trace,
                        name=self.admission.name,
                        requests=len(work),
                        **(info.details or {}),
                    )
                    for index, _ in work:
                        results[index] = TaskResult(answer=None, error=info, tenant=tenant)
                else:
                    try:
                        with remote_span(
                            "router.submit",
                            trace_id=trace,
                            parent_id=span_parent,
                            specs=len(work),
                            tenant=resolved,
                        ):
                            answered = self._dispatch(
                                [spec for _, spec in work],
                                priority=priority,
                                trace=trace,
                                tenant=resolved,
                            )
                    finally:
                        self.admission.release(len(work))
                    for (index, _), result in zip(work, answered):
                        if result.tenant is None:
                            result.tenant = tenant
                        results[index] = result
            finally:
                if self.tenancy is not None:
                    self.tenancy.release(resolved, len(work))
                    self.tenancy.observe_latency(
                        resolved, time.perf_counter() - started, len(work)
                    )
        with self._lock:
            # Top-level requests only: the nested wave submissions a
            # pipeline plan makes through _dispatch do not inflate this.
            self.requests_served += len(spec_list)
        return [result for result in results if result is not None]

    def _dispatch(
        self,
        specs: Sequence[TaskSpec],
        *,
        priority: int = 0,
        trace: str | None = None,
        tenant: str | None = None,
    ) -> list[TaskResult]:
        if self._closed:
            raise ClusterError("router is closed")
        results: list[TaskResult | None] = [None] * len(specs)
        pending: list[tuple[int, TaskSpec]] = []
        plans: list[tuple[int, PipelineSpec]] = []
        for index, spec in enumerate(specs):
            if isinstance(spec, PipelineSpec):
                plans.append((index, spec))
            else:
                pending.append((index, spec))

        inflight = self._m_inflight
        n_tracked = len(pending)
        inflight.inc(n_tracked)
        # Pool threads get no contextvars; capture the caller's span (the
        # router.submit span, or a flow.wave span for nested wave dispatches)
        # here so every per-worker dispatch span parents under it.
        parent_span = Span.current()
        try:
            rounds = 0
            while pending:
                rounds += 1
                if rounds > len(self.workers) + 2:  # pragma: no cover - defensive
                    raise ClusterError("requeue loop exceeded the worker count")
                groups: dict[str, list[tuple[int, TaskSpec]]] = {}
                try:
                    for index, spec in pending:
                        groups.setdefault(self.worker_for(spec), []).append(
                            (index, spec)
                        )
                except LookupError as exc:
                    raise ClusterError(str(exc)) from exc
                futures = {}
                generations = {}
                for worker_id, group in groups.items():
                    generations[worker_id] = self._generation.get(worker_id, 0)
                    self._track_inflight(worker_id, +1)
                    futures[worker_id] = self._pool.submit(
                        self._submit_group_tracked,
                        worker_id,
                        group,
                        priority,
                        trace,
                        parent_span,
                        tenant,
                    )
                pending = []
                for worker_id, future in futures.items():
                    group = groups[worker_id]
                    try:
                        answered = future.result()
                    except (WorkerDeadError, ClusterError):
                        self._mark_dead(worker_id, generations[worker_id])
                        with self._lock:
                            self._requeues += len(group)
                        self._m_requeued.inc(len(group))
                        emit_event(
                            "router.requeue",
                            trace=trace,
                            worker=worker_id,
                            specs=len(group),
                        )
                        pending.extend(group)
                        continue
                    for (index, _), result in zip(group, answered):
                        results[index] = result
        finally:
            inflight.dec(n_tracked)

        for index, spec in plans:
            results[index] = self._run_plan(spec, tenant=tenant)
        return [result for result in results if result is not None]

    def _submit_group(
        self,
        worker_id: str,
        group: "list[tuple[int, TaskSpec]]",
        priority: int = 0,
        trace: str | None = None,
        parent: "Span | None" = None,
        tenant: str | None = None,
    ) -> list[TaskResult]:
        worker = self.workers[worker_id]
        # Runs on a pool thread: the dispatch span is re-rooted from the
        # captured caller span, and its id rides the envelope's "span" key so
        # the worker-side subtree (possibly in another process, over TCP)
        # parents under this hop.
        wire_trace = trace if trace is not None else (
            parent.trace_id if parent is not None else None
        )
        with span(
            "router.dispatch",
            trace_id=wire_trace,
            parent_id=parent.span_id if parent is not None else None,
            worker=worker_id,
            specs=len(group),
        ) as dispatch_span:
            weight = (
                self.tenancy.weight(tenant)
                if self.tenancy is not None and tenant is not None
                else 1.0
            )
            requests = [
                encode_request(
                    spec,
                    request_id=local_id,
                    version=PROTOCOL_VERSION,
                    trace=wire_trace,
                    priority=priority,
                    span=(
                        dispatch_span.span_id if dispatch_span is not None else None
                    ),
                    tenant=tenant,
                )
                for local_id, (_, spec) in enumerate(group)
            ]
            responses = worker.submit(
                requests,
                priority=priority,
                tenant=tenant if tenant is not None else "default",
                weight=weight,
            )
            if len(responses) != len(requests):
                raise WorkerDeadError(
                    f"worker {worker_id} answered {len(responses)} responses "
                    f"for {len(requests)} requests"
                )
        with self._lock:
            self._routed[worker_id] += len(group)
        self._m_routed[worker_id].inc(len(group))
        get_default_exemplars().note(f"router.routed.{worker_id}", wire_trace)
        return [decode_response(response) for response in responses]

    def _run_plan(self, spec: PipelineSpec, tenant: str | None = None) -> TaskResult:
        from ..serving.service import run_pipeline_spec

        def submit(specs: Sequence[TaskSpec]) -> list[TaskResult]:
            # Wave submissions keep the plan's tenant so worker-side
            # weighted-fair queues see the right weight (no re-admission:
            # the plan was charged once at the front door).
            return self._dispatch(specs, tenant=tenant)

        return run_pipeline_spec(spec, submit)

    # -------------------------------------------------------------- wire front
    def handle_batch(self, requests: Sequence[Any]) -> list[dict]:
        """Answer raw wire requests (either protocol generation) in order.

        Parsing and error encoding go through the same
        :func:`repro.serving.service.parse_batch` helper the single-process
        service uses, so the two front-ends answer malformed input
        identically — ``python -m repro serve --cluster`` is this method
        behind a socket.
        """
        from ..serving.service import parse_batch

        parsed_entries, responses = parse_batch(requests)
        # Wire batches can mix tenants; submit_specs charges one tenant per
        # call, so group by claimed tenant (everything is one "" group with
        # tenancy off — the pre-tenancy behaviour, bit for bit).
        groups: dict[str, list] = {}
        for position, parsed in parsed_entries:
            claimed = parsed.tenant or "" if self.tenancy is not None else ""
            groups.setdefault(claimed, []).append((position, parsed))
        for claimed, group in groups.items():
            specs = [parsed.spec for _, parsed in group]
            priority = max(parsed.priority for _, parsed in group)
            # Forward the batch's trace id to the workers when it is
            # unambiguous (all requests under one Trace context — the
            # common client batch); mixed-trace batches forward nothing.
            # The caller's span id parents this hop under the same condition.
            traces = {parsed.trace for _, parsed in group if parsed.trace}
            batch_trace = traces.pop() if len(traces) == 1 else None
            spans = {parsed.span for _, parsed in group if parsed.span}
            batch_parent = (
                spans.pop() if batch_trace is not None and len(spans) == 1 else None
            )
            for (position, parsed), result in zip(
                group,
                self.submit_specs(
                    specs,
                    priority=priority,
                    trace=batch_trace,
                    span_parent=batch_parent,
                    tenant=claimed or None,
                ),
            ):
                if result.error is not None:
                    responses[position] = encode_error(
                        result.error,
                        parsed.id,
                        parsed.version,
                        trace=parsed.trace,
                        tenant=parsed.tenant,
                    )
                else:
                    responses[position] = encode_success(
                        result,
                        parsed.id,
                        parsed.version,
                        trace=parsed.trace,
                        tenant=parsed.tenant,
                    )
        return [response for response in responses if response is not None]

    def _submit_group_tracked(
        self,
        worker_id: str,
        group: "list[tuple[int, TaskSpec]]",
        priority: int = 0,
        trace: str | None = None,
        parent: "Span | None" = None,
        tenant: str | None = None,
    ) -> list[TaskResult]:
        try:
            return self._submit_group(
                worker_id, group, priority, trace, parent, tenant
            )
        finally:
            self._track_inflight(worker_id, -1)

    def _track_inflight(self, worker_id: str, delta: int) -> None:
        with self._drain_cv:
            self._inflight_by[worker_id] = (
                self._inflight_by.get(worker_id, 0) + delta
            )
            if delta < 0:
                self._drain_cv.notify_all()

    # ------------------------------------------------------------------ health
    def check_health(self) -> dict[str, bool]:
        """Ping every worker; mark and un-ring the dead.  Returns id → alive."""
        alive = {}
        for worker_id, worker in list(self.workers.items()):
            generation = self._generation.get(worker_id, 0)
            ok = worker.ping()
            alive[worker_id] = ok
            if not ok and worker_id in self._ring:
                self._mark_dead(worker_id, generation)
        return alive

    def _sweep_loop(self) -> None:
        interval = self._health_interval or 30.0
        while not self._sweep_stop.wait(interval):
            try:
                self.check_health()
            except Exception:  # pragma: no cover - defensive
                continue

    def _mark_dead(self, worker_id: str, generation: int | None = None) -> None:
        """Un-ring a worker discovered dead (idempotent, generation-aware).

        A sweep and a failed submit can report the same corpse
        concurrently, and a stale report can arrive *after* the Supervisor
        revived the worker; the registration generation captured at
        dispatch time disarms both — only the first matching report of a
        still-current incarnation counts a death.
        """
        with self._lock:
            current = self._generation.get(worker_id, 0)
            stale = generation is not None and generation != current
            if not stale and worker_id in self._ring:
                self._ring.remove(worker_id)
                self._deaths += 1
                self._m_deaths.inc()
                self._m_workers.set(len(self._ring.nodes))
                died = True
            else:
                died = False
        if died:
            emit_event(
                "worker.death", worker=worker_id, survivors=len(self._ring.nodes)
            )

    @property
    def live_workers(self) -> set[str]:
        return self._ring.nodes

    @property
    def draining_workers(self) -> set[str]:
        """Workers currently draining out of the ring (planned leaves)."""
        with self._lock:
            return set(self._draining)

    # -------------------------------------------------------------- elasticity
    def add_worker(
        self, worker: Worker | None = None, *, worker_id: str | None = None
    ) -> str:
        """Join a worker to the ring at runtime; returns its id.

        The live-resize half of elasticity: while requests are in flight,
        the consistent-hash-minimal set of moved spec keys is computed from
        every live shard's route index, exactly those ``PersistentCache``
        entries are copied into the joining worker's shard (before the
        worker opens it when the router builds the worker itself, so the
        join starts warm), the sources drop the moved entries, and only
        then does the new node enter the ring.

        Pass a pre-built ``worker`` or let the router build one through its
        worker factory (installed by :meth:`local`/:meth:`spawn`).
        """
        if worker is None and self._worker_factory is None:
            raise ClusterError(
                "add_worker needs a pre-built worker or a worker_factory"
            )
        new_id = worker.worker_id if worker is not None else (
            worker_id or self._next_worker_id()
        )
        with self._lock:
            if new_id in self.workers:
                raise ValueError(f"duplicate worker id: {new_id}")
        # Placement what-if: where will keys live once new_id joins?
        with self._lock:
            new_ring = self._ring.with_node(new_id)
        moved_rows, moved_by_source = self._collect_moved_for_join(new_id, new_ring)
        migrated = 0
        if worker is None:
            # Migrate on disk *before* the worker opens its shard: the
            # freshly built worker loads the moved entries warm.
            target_dir = self._shard_dir_for(new_id)
            if target_dir is not None and moved_rows:
                target = PersistentCache(target_dir, metrics=self._metrics)
                migrated = target.absorb(moved_rows)
                self._maybe_tear(target)
            worker = self._worker_factory(new_id)  # type: ignore[misc]
        elif moved_rows:
            shard = worker.shard()
            if shard is not None:
                migrated = shard.absorb(moved_rows)
                self._maybe_tear(shard)
            else:
                target_dir = worker.shard_path() or self._shard_dir_for(new_id)
                if target_dir is not None:
                    target = PersistentCache(target_dir, metrics=self._metrics)
                    migrated = target.absorb(moved_rows)
                    self._maybe_tear(target)
        # Sources stop holding what they no longer own (live shards only:
        # a subprocess source keeps stale copies rather than racing its
        # own appends — harmless duplicates, documented in architecture.md).
        for source_id, moved_routes in moved_by_source.items():
            source = self.workers.get(source_id)
            shard = source.shard() if source is not None else None
            if shard is not None:
                shard.remove_routes(moved_routes)
        self._register_worker(worker)
        with self._lock:
            self._resizes += 1
            self._migrations += migrated
        self._m_resizes.inc()
        if migrated:
            self._m_migrations.inc(migrated)
        emit_event(
            "cluster.resize",
            action="join",
            worker=new_id,
            migrated_entries=migrated,
            workers=len(self._ring.nodes),
        )
        return new_id

    def remove_worker(
        self,
        worker_id: str,
        *,
        drain: bool = True,
        migrate: bool = True,
        drain_timeout: float = 30.0,
    ) -> int:
        """Leave the ring at runtime; returns the number of migrated entries.

        The worker is un-ringed first (new dispatches immediately re-route
        to survivors), its in-flight groups drain (bounded by
        ``drain_timeout``), its shard entries migrate to their new
        consistent-hash owners, and only then is the worker closed and
        forgotten.  With ``drain=False`` in-flight work is abandoned to the
        requeue path instead (a forced leave).
        """
        with self._drain_cv:
            if worker_id not in self.workers:
                raise ValueError(f"unknown worker: {worker_id}")
            if len(self._ring.nodes) <= 1 and worker_id in self._ring:
                raise ClusterError("cannot remove the last live worker")
            self._draining.add(worker_id)
            if worker_id in self._ring:
                self._ring.remove(worker_id)
            self._m_workers.set(len(self._ring.nodes))
            if drain:
                deadline = time.monotonic() + drain_timeout
                while self._inflight_by.get(worker_id, 0) > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break  # give up waiting; requeue path covers the rest
                    self._drain_cv.wait(timeout=remaining)
        worker = self.workers[worker_id]
        migrated = 0
        if migrate:
            migrated = self._migrate_out(worker)
        worker.close()
        with self._drain_cv:
            self.workers.pop(worker_id, None)
            self._draining.discard(worker_id)
            self._inflight_by.pop(worker_id, None)
            self._resizes += 1
            self._migrations += migrated
        self._m_resizes.inc()
        if migrated:
            self._m_migrations.inc(migrated)
        emit_event(
            "cluster.resize",
            action="leave",
            worker=worker_id,
            migrated_entries=migrated,
            workers=len(self._ring.nodes),
        )
        return migrated

    def revive_worker(self, worker_id: str) -> Worker:
        """Respawn a crashed worker in place (same id, same shard dir).

        The Supervisor's restart primitive: the replacement re-opens the
        same persistent shard (warm-restart replay), takes over the ring
        position of its predecessor — consistent hashing puts it back in
        charge of exactly the keys it owned — and bumps the registration
        generation so stale death reports of the old incarnation are inert.
        """
        if self._worker_factory is None:
            raise ClusterError("revive_worker needs a worker_factory")
        with self._lock:
            if worker_id not in self.workers:
                raise ValueError(f"unknown worker: {worker_id}")
            if worker_id in self._ring:
                raise ClusterError(f"worker {worker_id} is still live")
        old = self.workers[worker_id]
        old.close()  # reap the corpse (idempotent on an already-dead child)
        worker = self._worker_factory(worker_id)
        with self._lock:
            self.workers[worker_id] = worker
            self._generation[worker_id] = self._generation.get(worker_id, 0) + 1
            self._ring.add(worker_id)
            self._restarts += 1
            self._m_workers.set(len(self._ring.nodes))
        self._m_restarts.inc()
        emit_event(
            "cluster.restart",
            worker=worker_id,
            generation=self._generation[worker_id],
            workers=len(self._ring.nodes),
        )
        return worker

    # ----------------------------------------------------- migration internals
    def _next_worker_id(self) -> str:
        with self._lock:
            taken = {_worker_index(wid) for wid in self.workers}
        index = 0
        while index in taken:
            index += 1
        return f"worker-{index:02d}"

    def _shard_dir_for(self, worker_id: str) -> "Path | None":
        if self._cache_dir is None:
            return None
        return self._cache_dir / worker_id

    def _shard_of(self, worker: Worker) -> "PersistentCache | None":
        """The worker's shard: live object preferred, else opened from disk."""
        shard = worker.shard()
        if shard is not None:
            return shard
        path = worker.shard_path()
        if path is not None and Path(path).exists():
            return PersistentCache(path, metrics=self._metrics)
        return None

    def _collect_moved_for_join(
        self, new_id: str, new_ring: HashRing
    ) -> "tuple[list[dict], dict[str, set[str]]]":
        """Rows relocating to ``new_id`` and which source shard owns them."""
        moved_rows: list[dict] = []
        moved_by_source: dict[str, set[str]] = {}
        for source_id, source in list(self.workers.items()):
            if source_id not in self._ring:
                continue
            shard = self._shard_of(source)
            if shard is None:
                continue
            routes = shard.route_keys()
            moved = {
                key
                for key, (_, new_owner) in minimal_moved_keys(
                    self._ring, new_ring, routes
                ).items()
                if new_owner == new_id
            }
            if moved:
                moved_rows.extend(shard.entries_for_routes(moved))
                moved_by_source[source_id] = moved
        return moved_rows, moved_by_source

    def _migrate_out(self, worker: Worker) -> int:
        """Copy a leaving worker's entries to their new ring owners."""
        shard = self._shard_of(worker)
        if shard is None or not self._ring.nodes:
            return 0
        routes = shard.route_keys()
        if not routes:
            return 0
        by_target: dict[str, set[str]] = {}
        for key in routes:
            try:
                by_target.setdefault(self._ring.node_for(key), set()).add(key)
            except LookupError:  # pragma: no cover - ring emptied mid-leave
                return 0
        migrated = 0
        for target_id, moved in by_target.items():
            rows = shard.entries_for_routes(moved)
            if not rows:
                continue
            target = self.workers.get(target_id)
            target_shard = self._shard_of(target) if target is not None else None
            if target_shard is None:
                continue
            migrated += target_shard.absorb(rows)
            self._maybe_tear(target_shard)
        return migrated

    def _maybe_tear(self, shard: "PersistentCache") -> None:
        """Fault hook: a torn-migration injection truncates the target."""
        if self._faults is not None:
            self._faults.maybe_tear(shard)

    def _register_worker(self, worker: Worker) -> None:
        worker_id = worker.worker_id
        with self._lock:
            self.workers[worker_id] = worker
            self._routed.setdefault(worker_id, 0)
            self._generation.setdefault(worker_id, 0)
            self._inflight_by.setdefault(worker_id, 0)
            if worker_id not in self._m_routed:
                self._m_routed[worker_id] = self._metrics.counter(
                    f"router.routed.{worker_id}"
                )
            self._ring.add(worker_id)
            self._m_workers.set(len(self._ring.nodes))

    # ------------------------------------------------------------------- stats
    def stats_snapshot(
        self, prefix: str = "", *, reset: bool = False, tenant: str = ""
    ) -> dict:
        """The observability snapshot a ``stats`` request answers with.

        Combines the aggregated :class:`ClusterStats` rows with the metric
        registry (batcher/engine/cache counters of every thread worker live
        in the same process registry) and the admission-control state.  With
        ``reset`` the registry is zeroed in place after the snapshot; with
        ``tenant`` (and tenancy on) the metrics narrow to that tenant's
        ``tenant.<name>.*`` series and the tenancy section to its state.
        """
        if tenant and not prefix and self.tenancy is not None:
            prefix = f"tenant.{self.tenancy.resolve(tenant)}."
        snapshot = {
            "cluster": self.stats().to_payload(),
            "admission": {
                "max_inflight": self.admission.max_inflight,
                "max_queue_depth": self.admission.max_queue_depth,
                "pending": self.admission.pending,
                "inflight": self.admission.inflight,
                "queue_depth": self.admission.queued,
                "retry_after": self.admission.retry_after,
            },
            "metrics": self._metrics.snapshot(prefix),
            "exemplars": get_default_exemplars().snapshot(),
        }
        if self.tenancy is not None:
            snapshot["tenancy"] = self.tenancy.snapshot(tenant or None)
        snapshot.update(self.monitor.sections(prefix))
        if reset:
            self._metrics.reset()
        return snapshot

    def stats(self) -> ClusterStats:
        """Aggregate a :class:`ClusterStats` snapshot across all workers."""
        rows: list[WorkerStats] = []
        for worker_id, worker in list(self.workers.items()):
            row = worker.stats()
            row.alive = worker_id in self._ring and row.alive
            row.routed = self._routed.get(worker_id, 0)
            rows.append(row)
        with self._lock:
            return ClusterStats(
                workers=rows,
                routed=sum(self._routed.values()),
                requeues=self._requeues,
                deaths=self._deaths,
                migrations=self._migrations,
                resizes=self._resizes,
                restarts=self._restarts,
                draining=len(self._draining),
            )

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the pool down and close every worker (idempotent).

        Joins the background health-sweep thread before tearing the pool
        down so a sweep can never race worker shutdown.
        """
        if self._closed:
            return
        self._closed = True
        self._sweep_stop.set()
        if self._sweep_thread is not None:
            self._sweep_thread.join(timeout=5.0)
            self._sweep_thread = None
        self.monitor.stop()
        self._pool.shutdown(wait=True)
        for worker in list(self.workers.values()):
            worker.close()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _worker_index(worker_id: str) -> int:
    """The numeric suffix of a ``worker-NN`` id (0 when there is none).

    Feeds ``llm_factory(index)`` so a worker rebuilt by the factory gets
    the same backend its original had.
    """
    tail = worker_id.rsplit("-", 1)[-1]
    try:
        return int(tail)
    except ValueError:
        return 0
