"""The pipeline wire type and plan-level service execution.

Acceptance contract of the flow subsystem: a multi-stage pipeline
(detect -> impute -> transform) over a datalake table produces identical
outputs through ``Client.local`` and ``Client.remote`` — both for the
stage-by-stage ``Pipeline.run`` path (the executor streams spec batches
through ``submit_many``) and for the plan-level ``Pipeline.submit`` path
(one ``PipelineSpec`` request, executed service-side).

Both services are fresh seed-0 stacks with sequential engines (one worker,
batch size 1): the simulated model's noise stream then advances in exactly
the same order on both sides, making the comparison bit-exact.
"""

import asyncio
import threading

import pytest

from repro.api import Client, InvalidRequestError, PipelineSpec
from repro.datalake import Table
from repro.flow import DetectErrors, Filter, Impute, Pipeline, Transform
from repro.serving import build_service

ROWS = [
    {"name": "ada's diner", "city": "rome", "phone": "06-555-0101"},
    {"name": "bob's grill", "city": None, "phone": "06-555-0102"},
    {"name": "bob's grill", "city": None, "phone": "06-555-0102"},
    {"name": "cyd's cafe", "city": "pisa", "phone": "06-555-0103"},
    {"name": "dot's bar", "city": None, "phone": "06-555-0104"},
    {"name": "eve's place", "city": "rome", "phone": "06-555-0105"},
]


def make_table():
    return Table.from_dicts("restaurants", [dict(r) for r in ROWS])


def make_flow(partition_size=3):
    return Pipeline(
        [
            DetectErrors("phone"),
            Impute("city"),
            Transform("phone", examples=[["06-555-0101", "+39 06 555 0101"]],
                      output_column="intl"),
        ],
        partition_size=partition_size,
    )


@pytest.fixture
def remote_port():
    """A real TCP service (fresh seed-0 stack, sequential engine)."""
    service = build_service(seed=0, batch_size=1, workers=1)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(service.start_tcp("127.0.0.1", 0))
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()
        server.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "TCP service did not start"
    yield holder["port"]
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


# ----------------------------------------------------------------- validation
def test_pipeline_spec_validates_rows_and_stages():
    with pytest.raises(InvalidRequestError):
        PipelineSpec(rows=[], stages=[{"op": "impute", "column": "city"}])
    with pytest.raises(InvalidRequestError) as excinfo:
        PipelineSpec(rows=[{"city": None}], stages=[])
    assert excinfo.value.info.field == "stages"
    with pytest.raises(InvalidRequestError):
        PipelineSpec(rows=[{"city": None}], stages=[{"op": "no_such_op"}])
    with pytest.raises(InvalidRequestError):
        # Static column check runs at validation time: zipcode never exists.
        PipelineSpec(rows=[{"city": None}], stages=[{"op": "impute", "column": "zipcode"}])
    with pytest.raises(InvalidRequestError):
        PipelineSpec(
            rows=[{"city": None}],
            stages=[{"op": "impute", "column": "city"}],
            partition_size=0,
        )


def test_pipeline_spec_round_trips_and_materialises():
    spec = PipelineSpec(
        rows=[{"city": "rome"}, {"city": None}],
        stages=[{"op": "impute", "column": "city"}],
        table_name="cities",
        partition_size=2,
    )
    rebuilt = PipelineSpec.from_request(spec.to_request())
    assert rebuilt == spec
    assert rebuilt.to_table().name == "cities"
    assert [s.op for s in rebuilt.to_pipeline().stages] == ["impute"]


def test_pipeline_spec_is_not_a_single_task():
    spec = PipelineSpec(
        rows=[{"city": None}], stages=[{"op": "impute", "column": "city"}]
    )
    with pytest.raises(InvalidRequestError):
        spec.to_task()


# ------------------------------------------------------- local plan execution
def test_service_executes_a_pipeline_request_locally():
    with Client.local(seed=0, batch_size=1, workers=1) as client:
        result = make_flow().submit(make_table(), client)
    table = result.table
    assert table.schema.names == ["name", "city", "phone", "phone_error", "intl"]
    assert len(table) == len(ROWS)
    assert all(v is not None for v in table.column("city"))
    assert result.report.specs > result.report.submitted  # dedup server-side
    assert result.report.llm_calls > 0 and result.report.llm_tokens > 0


def test_service_reports_pipeline_failures_as_structured_errors():
    with Client.local(seed=0) as client:
        results = client.submit_many(
            [
                PipelineSpec(
                    rows=[{"city": None}],
                    stages=[{"op": "impute", "column": "city"}],
                )
            ]
        )
        assert results[0].ok  # sanity: a good plan succeeds
        # A malformed plan fails at parse time with a field-tagged error.
        response = client.service.handle_request(
            {
                "v": 2,
                "id": 9,
                "task": {
                    "type": "pipeline",
                    "rows": [{"city": None}],
                    "stages": [{"op": "impute", "column": "nope"}],
                },
            }
        )
    assert response["ok"] is False
    assert response["error"]["code"] == "invalid_request"
    assert response["error"]["field"] == "stages"


def test_plan_submission_preserves_schema_of_empty_results():
    # A pipeline that adds a column then filters every row away: the plan
    # response must still carry the output schema, exactly like flow.run.
    flow = Pipeline(
        [
            DetectErrors("phone"),
            Filter("phone", "missing"),  # no phone is missing: keep no rows
        ]
    )
    table = make_table()
    with Client.local(seed=0, batch_size=1, workers=1) as client:
        submitted = flow.submit(table, client)
        ran = flow.run(table, client=client)
    assert len(submitted.table) == len(ran.table) == 0
    assert submitted.table.schema.names == ran.table.schema.names
    assert "phone_error" in submitted.table.schema.names


# ------------------------------------------------------------- remote parity
def test_multi_stage_pipeline_local_and_remote_identical(remote_port):
    local = Client.local(seed=0, batch_size=1, workers=1)
    remote = Client.remote("127.0.0.1", remote_port)
    flow = make_flow()

    local_result = flow.run(make_table(), client=local)
    remote_result = flow.run(make_table(), client=remote)

    assert remote_result.table.to_dicts() == local_result.table.to_dicts()
    assert remote_result.answers == local_result.answers
    assert remote_result.report.specs == local_result.report.specs
    assert remote_result.report.submitted == local_result.report.submitted
    # The acceptance workload really is multi-stage and deduplicated.
    assert [s.op for s in local_result.report.stages] == [
        "detect_errors",
        "impute",
        "transform",
    ]
    assert local_result.report.specs > local_result.report.submitted


def test_plan_level_submission_matches_stage_by_stage(remote_port):
    remote = Client.remote("127.0.0.1", remote_port)
    flow = make_flow()
    submitted = flow.submit(make_table(), remote)
    with Client.local(seed=0, batch_size=1, workers=1) as local:
        ran = flow.run(make_table(), client=local)
    assert submitted.table.to_dicts() == ran.table.to_dicts()
    assert submitted.answers == ran.answers
    assert submitted.report.specs == ran.report.specs
    assert submitted.report.submitted == ran.report.submitted
