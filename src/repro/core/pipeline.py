"""The UniDM pipeline — Algorithm 1 of the paper.

Given a task instance (one of the adapters in :mod:`repro.core.tasks`), the
pipeline runs the three main steps end-to-end:

1. automatic context retrieval (meta-wise ``p_rm`` then instance-wise ``p_ri``),
2. context data parsing (``serialize()`` then ``p_dp``),
3. target prompt construction (``p_cq`` producing the cloze prompt ``p_as``),

and finally queries the LLM with the constructed prompt to obtain the answer
``Y``.  Every step can be disabled through :class:`~repro.core.config.UniDMConfig`
for the ablation studies, and per-query token usage is tracked for the cost
comparison of Table 7.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..llm.base import LanguageModel
from .cloze import TargetPromptBuilder
from .config import UniDMConfig
from .parsing import ContextParser, ParsedContext
from .retrieval import ContextRetriever
from .tasks.base import Task
from .types import ManipulationResult, PromptTrace


class UniDM:
    """Unified Data Manipulation pipeline over a pluggable language model."""

    def __init__(self, llm: LanguageModel, config: UniDMConfig | None = None):
        self.llm = llm
        self.config = config or UniDMConfig()
        self.retriever = ContextRetriever(llm, self.config)
        self.parser = ContextParser(llm, self.config)
        self.prompt_builder = TargetPromptBuilder(llm, self.config)
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ running
    def run(self, task: Task) -> ManipulationResult:
        """Solve one task instance (Algorithm 1)."""
        trace = PromptTrace()
        usage_before = self.llm.usage.snapshot()

        context = self._build_context(task, trace)
        target = self.prompt_builder.build(task, context.text, trace)
        completion = self.llm.complete(target.text, kind="answer")
        trace.answer = completion.text

        usage = self.llm.usage.delta_since(usage_before)
        return ManipulationResult(
            task_type=task.task_type,
            raw_answer=completion.text,
            value=task.parse_answer(completion.text),
            query=task.query(),
            context_text=context.text,
            selected_attributes=list(getattr(context, "attributes", [])) or [],
            trace=trace,
            usage=usage,
        )

    def run_many(self, tasks: Iterable[Task]) -> list[ManipulationResult]:
        """Solve a sequence of task instances."""
        return [self.run(task) for task in tasks]

    # ------------------------------------------------------------- context assembly
    def _build_context(self, task: Task, trace: PromptTrace) -> "_Context":
        # 1) Context supplied by the task itself (transformation examples,
        #    documents for information extraction).
        raw_text = task.context_text()
        if raw_text is not None:
            parsed = self.parser.parse_raw_text(raw_text, trace)
            return _Context(text=parsed.text, attributes=[])

        rows = task.context_rows()
        if rows is not None:
            parsed = self.parser.parse_rows(rows, trace)
            return _Context(text=parsed.text, attributes=[])

        # 2) Automatic retrieval from the task's source table.
        retrieved = self.retriever.retrieve(task, self._rng, trace)
        if retrieved.is_empty:
            return _Context(text="", attributes=retrieved.attributes)
        parsed = self.parser.parse_records(
            retrieved.records, retrieved.attributes, trace
        )
        return _Context(text=parsed.text, attributes=retrieved.attributes)


class _Context:
    """Internal carrier of the assembled context."""

    __slots__ = ("text", "attributes")

    def __init__(self, text: str, attributes: Sequence[str]):
        self.text = text
        self.attributes = list(attributes)


def solve(
    task: Task,
    llm: LanguageModel,
    config: UniDMConfig | None = None,
) -> ManipulationResult:
    """One-shot convenience wrapper: build a pipeline and run a single task."""
    return UniDM(llm, config).run(task)


__all__ = ["UniDM", "solve", "ParsedContext"]
