"""Formatting helpers: render experiment results as the paper's tables.

Every experiment module produces a list of row dicts; these helpers turn them
into aligned plain-text tables (printed by the benchmark harness and written
into EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
    float_format: str = "{:.1f}",
) -> str:
    """Render rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    widths = {
        c: max(len(c), *(len(fmt(row.get(c, ""))) for row in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(fmt(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.1f}",
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    lines = ["| " + " | ".join(columns) + " |", "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def pivot_rows(
    rows: Sequence[Mapping[str, Any]],
    index: str,
    column: str,
    value: str,
) -> list[dict[str, Any]]:
    """Pivot long-form rows (method/dataset/score) into a wide table."""
    table: dict[Any, dict[str, Any]] = {}
    column_order: list[Any] = []
    for row in rows:
        key = row[index]
        table.setdefault(key, {index: key})
        table[key][str(row[column])] = row[value]
        if row[column] not in column_order:
            column_order.append(row[column])
    return list(table.values())
