"""Unit tests for the TDE, WarpGate and Evaporate baselines."""

from repro.baselines import (
    EvaporateCode,
    EvaporateCodePlus,
    TDETransformer,
    WarpGateJoinDiscovery,
)
from repro.core import TransformationTask
from repro.eval import evaluate


def test_tde_solves_syntactic_cases_only(stackoverflow_dataset):
    tde = TDETransformer(seed=0)
    predictions = tde.predict_dataset(stackoverflow_dataset)
    cases = stackoverflow_dataset.extra["cases"]
    for case, prediction, truth in zip(cases, predictions, stackoverflow_dataset.ground_truth):
        if case.kind == "semantic":
            assert prediction != truth  # search cannot learn lookup mappings
    result = evaluate(tde, stackoverflow_dataset)
    syntactic_fraction = sum(c.kind == "syntactic" for c in cases) / len(cases)
    assert abs(result.score - syntactic_fraction) < 0.25


def test_tde_single_task_interface():
    tde = TDETransformer()
    task = TransformationTask("20000101", [("20210315", "2021-03-15")])
    assert tde.transform(task) == "2000-01-01"
    unknown = TransformationTask("germany", [("france", "FRA")])
    assert tde.transform(unknown) == ""


def test_warpgate_scores_overlap_joins_high(nextiajd_dataset):
    warpgate = WarpGateJoinDiscovery(seed=0)
    scores = warpgate.score_dataset(nextiajd_dataset)
    assert len(scores) == len(nextiajd_dataset.tasks)
    pairs = nextiajd_dataset.extra["pairs"]
    overlap = [s for s, p in zip(scores, pairs) if p.kind == "overlap"]
    negative = [s for s, p in zip(scores, pairs) if p.kind == "negative"]
    if overlap and negative:
        assert max(overlap) > min(negative)
    predictions = warpgate.predict_dataset(nextiajd_dataset)
    assert len(predictions) == len(scores)


def test_warpgate_misses_semantic_joins(nextiajd_dataset):
    warpgate = WarpGateJoinDiscovery(seed=0)
    scores = warpgate.score_dataset(nextiajd_dataset)
    pairs = nextiajd_dataset.extra["pairs"]
    semantic = [s for s, p in zip(scores, pairs) if p.kind == "semantic"]
    overlap = [s for s, p in zip(scores, pairs) if p.kind == "overlap"]
    if semantic and overlap:
        assert sum(semantic) / len(semantic) < sum(overlap) / len(overlap)


def test_evaporate_code_plus_beats_code(nba_dataset):
    code = evaluate(EvaporateCode(seed=0), nba_dataset)
    code_plus = evaluate(EvaporateCodePlus(seed=0), nba_dataset)
    assert code_plus.score >= code.score
    assert code_plus.score > 0.4


def test_evaporate_outputs_align_with_tasks(nba_dataset):
    predictions = EvaporateCode(seed=0).predict_dataset(nba_dataset)
    assert len(predictions) == len(nba_dataset.tasks)
    assert all(isinstance(p, str) for p in predictions)
