"""Unit tests for the error-detection baselines."""

from repro.baselines import HoloCleanDetector, HoloDetectDetector
from repro.eval import evaluate


def test_holoclean_detector_flags_rare_values(hospital_dataset):
    predictions = HoloCleanDetector(seed=0).predict_dataset(hospital_dataset)
    assert len(predictions) == len(hospital_dataset.tasks)
    assert any(predictions)
    # Recall is high: injected typos are unique values.
    result = evaluate(HoloCleanDetector(seed=0), hospital_dataset)
    assert result.extras["recall"] >= 0.8


def test_holodetect_better_than_holoclean(hospital_dataset):
    holoclean = evaluate(HoloCleanDetector(seed=0), hospital_dataset)
    holodetect = evaluate(HoloDetectDetector(seed=0), hospital_dataset)
    assert holodetect.score >= holoclean.score
    assert holodetect.score >= 0.6


def test_holodetect_predictions_are_booleans(hospital_dataset):
    predictions = HoloDetectDetector(seed=0).predict_dataset(hospital_dataset)
    assert set(map(type, predictions)) <= {bool}
