"""The data lake: a named collection of heterogeneous tables.

Unlike a relational database, join relations between tables are *not*
declared (Section 3 of the paper); discovering them is itself a task (join
discovery, Appendix D).  The lake therefore only offers lookup, enumeration and
simple search over table/attribute names.
"""

from __future__ import annotations

from typing import Iterator

from .table import Table


class DataLake:
    """A collection of :class:`~repro.datalake.table.Table` objects."""

    def __init__(self, tables: list[Table] | None = None, name: str = "lake"):
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables or []:
            self.add(table)

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __getitem__(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"table {name!r} not found in lake {self.name!r}; "
                f"available: {sorted(self._tables)}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataLake(name={self.name!r}, tables={sorted(self._tables)})"

    # -- management -----------------------------------------------------------
    def add(self, table: Table, replace: bool = False) -> None:
        """Register a table; refuses to overwrite unless ``replace`` is set."""
        if table.name in self._tables and not replace:
            raise ValueError(f"table {table.name!r} already present in the lake")
        self._tables[table.name] = table

    def remove(self, name: str) -> Table:
        return self._tables.pop(name)

    def get(self, name: str) -> Table | None:
        return self._tables.get(name)

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def tables(self) -> list[Table]:
        return [self._tables[n] for n in sorted(self._tables)]

    # -- discovery helpers ------------------------------------------------------
    def find_tables_with_attribute(self, attribute: str) -> list[Table]:
        """All tables whose schema contains ``attribute``."""
        return [t for t in self.tables if attribute in t.schema]

    def attribute_index(self) -> dict[str, list[str]]:
        """Map attribute name -> list of table names containing it."""
        index: dict[str, list[str]] = {}
        for table in self.tables:
            for attr in table.schema.names:
                index.setdefault(attr, []).append(table.name)
        return index

    def total_records(self) -> int:
        return sum(len(t) for t in self.tables)

    def qualified_columns(self) -> list[tuple[str, str]]:
        """All ``(table, attribute)`` pairs in the lake, sorted."""
        return [
            (table.name, attr)
            for table in self.tables
            for attr in table.schema.names
        ]
