"""Benchmark: span + event-log instrumentation overhead on the hot path.

The observability layer promises to be cheap enough to leave on: every task,
micro-batch and cache lookup opens a span, and every finished span lands in
the in-memory event ring.  This benchmark runs the same warmed-cache engine
workload through three arms in rotation — instrumentation off, tracing on,
and tracing on *plus* the full monitoring stack (time-series sampling and an
active SLO engine evaluating every tick) — and gates each enabled arm
against the untraced one on the smaller of two robust estimates::

    floor_ratio  = min(t_arm) / min(t_untraced)      # filters bursty noise
    paired_ratio = median(t_arm[i] / t_untraced[i])  # filters slow drift
    overhead_ratio = min(floor_ratio, paired_ratio)  <= 1.10

Each estimator overstates overhead under the noise mode the other absorbs:
the two floors are each arm's least-contended sample, so a bursty stall
(a busy CI runner) cannot fail the gate — but when the machine's effective
speed drifts across the run, the floors can land in different speed windows.
The paired median cancels that drift (each pair is adjacent in time) but is
inflated by asymmetric bursts.  Noise can only inflate both estimates, so a
session whose ratio lands over the cap is re-measured once and the better
session is kept — only a genuinely more expensive span path fails twice.
``scripts/check_bench.py`` re-checks both of the committed artifact's
ratios against the same absolute cap.
"""

import statistics
import time

from conftest import run_once
from report import reset_default_metrics, write_bench

from repro.core import UniDM, UniDMConfig
from repro.datasets import load_dataset
from repro.llm import CachedLLM, SimulatedLLM
from repro.obs import (
    HealthMonitor,
    SLOSpec,
    configure_default_event_log,
    set_tracing,
    tracing_enabled,
)
from repro.serving import EngineConfig, ExecutionEngine, PersistentCache

N_TASKS = 100
ROUNDS = 12
MAX_OVERHEAD_RATIO = 1.10
#: Background tick period of the monitored arm.  Far denser than the 1 s
#: production default, so even a sub-second workload sees several full
#: sample + SLO-evaluation cycles — overstating real overhead, never
#: flattering it.
MONITOR_INTERVAL = 0.05


def test_span_and_event_overhead_is_bounded(benchmark, tmp_path):
    dataset = load_dataset("restaurant", seed=0, n_records=80, n_tasks=N_TASKS)
    store = tmp_path / "completions"

    def fresh_pipeline():
        llm = CachedLLM(
            SimulatedLLM(knowledge=dataset.knowledge, seed=0),
            persistent=PersistentCache(store),
        )
        return UniDM(llm, UniDMConfig.full(seed=0))

    # Warm the persistent cache once so both arms replay identical hits and
    # the timing is dominated by engine/batcher/cache framework code — the
    # code the spans actually wrap — not by simulated-LLM work.
    warm = fresh_pipeline()
    for task in dataset.tasks:
        warm.run(task)

    # Ring-only event log (no file sink): the gate covers the always-on
    # configuration, not the optional JSONL spill.
    configure_default_event_log(capacity=4096, path=None, sample_rate=1.0)

    def run_arm() -> float:
        pipeline = fresh_pipeline()
        engine = ExecutionEngine(EngineConfig(max_batch_size=8, workers=8))
        started = time.perf_counter()
        pipeline.run_many(dataset.tasks, engine=engine)
        return time.perf_counter() - started

    def run_monitored_arm() -> float:
        # The full always-on stack: tracing plus a HealthMonitor sampling
        # the process registry into rolling windows and evaluating one
        # active latency SLO on every tick.  The threshold is far above any
        # observed queue wait — the arm pays for evaluation, not alerting.
        monitor = HealthMonitor(
            slos=[
                SLOSpec(
                    name="bench-queue-wait",
                    kind="latency",
                    metric="batcher.queue_wait",
                    threshold=60.0,
                    windows=("10s",),
                )
            ],
            interval=MONITOR_INTERVAL,
        )
        monitor.start()
        try:
            return run_arm()
        finally:
            monitor.stop()

    def measure_session() -> tuple[list[float], list[float], list[float]]:
        # Adjacent triples, untraced first: one warm-up asymmetry (cold page
        # cache, first-engine setup) lands on the untraced arm, so it can
        # only overstate the enabled/untraced ratios, never flatter them.
        traced: list[float] = []
        untraced: list[float] = []
        monitored: list[float] = []
        for _ in range(ROUNDS):
            set_tracing(False)
            untraced.append(run_arm())
            set_tracing(True)
            traced.append(run_arm())
            monitored.append(run_monitored_arm())
        return traced, untraced, monitored

    def arm_ratios(arm: list[float], untraced: list[float]) -> tuple[float, float]:
        floor_ratio = min(arm) / min(untraced)
        paired_ratio = statistics.median(a / u for a, u in zip(arm, untraced))
        return floor_ratio, paired_ratio

    def session_ratio(arms: tuple[list[float], list[float], list[float]]) -> float:
        # A session is as bad as its worse arm — both must clear the cap.
        traced, untraced, monitored = arms
        return max(
            min(arm_ratios(traced, untraced)), min(arm_ratios(monitored, untraced))
        )

    was_enabled = tracing_enabled()
    sessions: list[tuple[list[float], list[float], list[float]]] = []
    try:

        def all_sessions():
            sessions.append(measure_session())
            if session_ratio(sessions[-1]) > MAX_OVERHEAD_RATIO:
                sessions.append(measure_session())

        run_once(benchmark, all_sessions)
    finally:
        set_tracing(was_enabled)
        reset_default_metrics()

    traced, untraced, monitored = min(sessions, key=session_ratio)
    floor_ratio, paired_ratio = arm_ratios(traced, untraced)
    ratio = min(floor_ratio, paired_ratio)
    slo_floor_ratio, slo_paired_ratio = arm_ratios(monitored, untraced)
    slo_ratio = min(slo_floor_ratio, slo_paired_ratio)
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"tracing overhead {ratio:.3f}x exceeds {MAX_OVERHEAD_RATIO}x in "
        f"{len(sessions)} sessions (best: floor ratio {floor_ratio:.3f} from "
        f"minima {min(traced):.4f}s / {min(untraced):.4f}s, paired median "
        f"{paired_ratio:.3f}; per-pair ratios "
        f"{[round(t / u, 3) for t, u in zip(traced, untraced)]})"
    )
    assert slo_ratio <= MAX_OVERHEAD_RATIO, (
        f"monitoring overhead {slo_ratio:.3f}x exceeds {MAX_OVERHEAD_RATIO}x "
        f"in {len(sessions)} sessions (best: floor ratio {slo_floor_ratio:.3f} "
        f"from minima {min(monitored):.4f}s / {min(untraced):.4f}s, paired "
        f"median {slo_paired_ratio:.3f}; per-pair ratios "
        f"{[round(m / u, 3) for m, u in zip(monitored, untraced)]})"
    )

    write_bench(
        "obs",
        {
            "workload": {"tasks": N_TASKS, "dataset": "restaurant", "rounds": ROUNDS},
            "traced": {"elapsed_s": round(min(traced), 4)},
            "untraced": {"elapsed_s": round(min(untraced), 4)},
            "monitored": {
                "elapsed_s": round(min(monitored), 4),
                "tick_interval_s": MONITOR_INTERVAL,
                "slos": 1,
            },
            "floor_ratio": round(floor_ratio, 4),
            "paired_ratio": round(paired_ratio, 4),
            "overhead_ratio": round(ratio, 4),
            "slo_floor_ratio": round(slo_floor_ratio, 4),
            "slo_paired_ratio": round(slo_paired_ratio, 4),
            "slo_overhead_ratio": round(slo_ratio, 4),
        },
    )
