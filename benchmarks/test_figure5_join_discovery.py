"""Benchmark: regenerate Figure 5 (join discovery P/R/F1 vs threshold)."""

from conftest import run_once

from repro.experiments import figure5_join_discovery


def test_figure5_join_discovery(benchmark):
    rows = run_once(
        benchmark, figure5_join_discovery.run, seed=0, max_tasks=24, n_probes=2
    )
    unidm = {row["threshold"]: row["f1"] for row in rows if row["method"] == "UniDM"}
    warpgate = {row["threshold"]: row["f1"] for row in rows if row["method"] == "WarpGate"}
    assert set(unidm) == set(figure5_join_discovery.THRESHOLDS)
    # Paper shape: UniDM's F1 stays at least as high as WarpGate's across the
    # mid-range thresholds because it also finds semantic (abbreviation) joins.
    mid_thresholds = [0.5, 0.6, 0.7]
    unidm_mean = sum(unidm[t] for t in mid_thresholds) / len(mid_thresholds)
    warpgate_mean = sum(warpgate[t] for t in mid_thresholds) / len(mid_thresholds)
    assert unidm_mean >= warpgate_mean - 5
    assert max(unidm.values()) >= 60.0
