"""Benchmark: regenerate Table 5 (fine-tuning small LLMs for entity resolution)."""

from conftest import run_once

from repro.experiments import table5_finetune


def test_table5_finetune(benchmark):
    rows = run_once(benchmark, table5_finetune.run, seed=0, max_tasks=60)
    by_model = {row["model"]: row for row in rows}
    # Paper shape: raw small models collapse; fine-tuning brings them close to
    # the 175B model; UniDM >= FM on the fine-tuned models.
    assert by_model["GPT-J-6B"]["unidm_f1"] < by_model["GPT-J-6B (fine-tune)"]["unidm_f1"]
    assert by_model["LLaMA2-7B"]["unidm_f1"] < by_model["LLaMA2-7B (fine-tune)"]["unidm_f1"]
    assert by_model["GPT-J-6B (fine-tune)"]["unidm_f1"] >= by_model["GPT-3-175B"]["unidm_f1"] - 15
    assert by_model["GPT-J-6B"]["unidm_f1"] < by_model["GPT-3-175B"]["unidm_f1"]
