"""Benchmark: regenerate Table 3 (error detection F1)."""

from conftest import run_once, scores_by_method

from repro.experiments import table3_error_detection


def test_table3_error_detection(benchmark):
    # Error detection needs enough cells to contain a few true errors (5% rate).
    rows = run_once(benchmark, table3_error_detection.run, seed=0, max_tasks=120)
    assert len(rows) == 8
    for dataset in ("hospital", "adult"):
        scores = scores_by_method(rows, dataset=f"{dataset}[120]") or scores_by_method(rows, dataset=dataset)
        # Paper shape: UniDM and FM reach near-ceiling F1, above HoloClean.
        assert scores["UniDM"] >= scores["HoloClean"]
        assert scores["UniDM"] >= 70.0
        assert scores["FM"] >= 70.0
