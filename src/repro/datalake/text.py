"""Lightweight string utilities shared across the library.

These helpers back the instance-wise retrieval scoring, several baselines
(Magellan/Ditto similarity features, WarpGate embeddings, IMP nearest
neighbours) and the simulated LLM's fuzzy matching.  Everything is pure Python
+ numpy so the library has no heavyweight NLP dependencies.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

import numpy as np

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def normalize(text: object) -> str:
    """Lower-case, strip and collapse whitespace of an arbitrary value."""
    return re.sub(r"\s+", " ", str(text)).strip().lower()


def tokenize(text: object) -> list[str]:
    """Split a value into lower-cased alphanumeric tokens."""
    return _TOKEN_RE.findall(normalize(text))


def char_ngrams(text: object, n: int = 3) -> list[str]:
    """Character n-grams of the normalised text (padded with spaces)."""
    s = f" {normalize(text)} "
    if len(s) < n:
        return [s]
    return [s[i : i + n] for i in range(len(s) - n + 1)]


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (0 when both empty)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def token_jaccard(a: object, b: object) -> float:
    return jaccard(tokenize(a), tokenize(b))


def trigram_jaccard(a: object, b: object) -> float:
    return jaccard(char_ngrams(a), char_ngrams(b))


def overlap_coefficient(a: Iterable[str], b: Iterable[str]) -> float:
    """|A ∩ B| / min(|A|, |B|) — the containment measure used for joins."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / min(len(sa), len(sb))


#: Cap on the string length fed to the quadratic edit-distance computation;
#: longer values are truncated (similarity of long texts is dominated by the
#: token/trigram components anyway).
_LEVENSHTEIN_MAX_LEN = 48


def levenshtein(a: str, b: str) -> int:
    """Edit distance via the classic two-row dynamic program."""
    a, b = normalize(a)[:_LEVENSHTEIN_MAX_LEN], normalize(b)[:_LEVENSHTEIN_MAX_LEN]
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def edit_similarity(a: object, b: object) -> float:
    """1 - normalised edit distance, in [0, 1]."""
    sa, sb = normalize(a), normalize(b)
    if not sa and not sb:
        return 1.0
    denom = max(len(sa), len(sb))
    if denom == 0:
        return 1.0
    return 1.0 - levenshtein(sa, sb) / denom


def string_similarity(a: object, b: object) -> float:
    """Blend of token-, trigram- and edit-based similarity in [0, 1].

    A single blended score is more robust than any individual measure for the
    heterogeneous values found in lake tables (names, addresses, prices...).
    """
    return float(
        0.4 * token_jaccard(a, b)
        + 0.35 * trigram_jaccard(a, b)
        + 0.25 * edit_similarity(a, b)
    )


def numeric_similarity(a: object, b: object) -> float:
    """Relative-difference similarity for numeric-looking values, else 0."""
    try:
        fa, fb = float(str(a).replace("$", "").replace(",", "")), float(
            str(b).replace("$", "").replace(",", "")
        )
    except (TypeError, ValueError):
        return 0.0
    if fa == fb:
        return 1.0
    denom = max(abs(fa), abs(fb))
    if denom == 0:
        return 1.0
    return max(0.0, 1.0 - abs(fa - fb) / denom)


# ---------------------------------------------------------------------------
# Hashed n-gram embeddings (used by WarpGate and IMP).
# ---------------------------------------------------------------------------

def hashed_ngram_vector(text: object, dim: int = 256, n: int = 3) -> np.ndarray:
    """Embed a value as an L2-normalised hashed bag of character n-grams."""
    vec = np.zeros(dim, dtype=np.float64)
    for gram in char_ngrams(text, n=n):
        vec[hash(gram) % dim] += 1.0
    norm = np.linalg.norm(vec)
    if norm > 0:
        vec /= norm
    return vec


def embed_values(values: Sequence[object], dim: int = 256, n: int = 3) -> np.ndarray:
    """Stack hashed n-gram embeddings for a sequence of values."""
    if not values:
        return np.zeros((0, dim), dtype=np.float64)
    return np.vstack([hashed_ngram_vector(v, dim=dim, n=n) for v in values])


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors, 0 when either is a zero vector."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def attribute_name_similarity(a: str, b: str) -> float:
    """Similarity of attribute *names*, tolerant to underscores and casing."""
    ta = tokenize(a.replace("_", " "))
    tb = tokenize(b.replace("_", " "))
    return 0.5 * jaccard(ta, tb) + 0.5 * edit_similarity(" ".join(ta), " ".join(tb))
