"""Program search over the transformation operator library.

Given one or more (input, output) example pairs, find a short composition of
operators from :mod:`repro.transforms.operators` that maps every input to its
output.  This is the algorithmic core of the TDE baseline ("Transform Data by
Example" searches a large function library for consistent programs) and is also
reused by the simulated LLM to model by-example format inference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .operators import OPERATOR_LIBRARY, TransformOperator


@dataclass(frozen=True)
class TransformProgram:
    """A pipeline of operators applied left to right."""

    operators: tuple[TransformOperator, ...] = field(default_factory=tuple)

    def __call__(self, value: str) -> Optional[str]:
        current: Optional[str] = str(value)
        for op in self.operators:
            if current is None:
                return None
            current = op(current)
        return current

    @property
    def name(self) -> str:
        return " | ".join(op.name for op in self.operators) or "identity"

    def __len__(self) -> int:
        return len(self.operators)

    def is_consistent(self, examples: Sequence[tuple[str, str]]) -> bool:
        """True when the program maps every example input to its output."""
        return all(self(src) == dst for src, dst in examples)


@dataclass
class SearchResult:
    """Outcome of a program search."""

    program: Optional[TransformProgram]
    candidates_tried: int

    @property
    def found(self) -> bool:
        return self.program is not None


class ProgramSearcher:
    """Breadth-first search for operator compositions consistent with examples.

    Parameters
    ----------
    library:
        Operator library to search; defaults to the full built-in library.
    max_depth:
        Maximum composition length (TDE-style searches keep programs short).
    max_candidates:
        Safety cap on the number of candidate programs evaluated.
    """

    def __init__(
        self,
        library: Sequence[TransformOperator] = OPERATOR_LIBRARY,
        max_depth: int = 2,
        max_candidates: int = 20_000,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.library = tuple(library)
        self.max_depth = max_depth
        self.max_candidates = max_candidates

    def search(self, examples: Sequence[tuple[str, str]]) -> SearchResult:
        """Find the shortest consistent program for the given example pairs."""
        examples = [(str(a), str(b)) for a, b in examples]
        if not examples:
            raise ValueError("at least one example pair is required")

        # Identity short-circuit: inputs already equal outputs.
        identity = TransformProgram()
        if identity.is_consistent(examples):
            return SearchResult(program=identity, candidates_tried=1)

        tried = 1
        # Prune depth-1 survivors to seed depth-2 compositions: an operator can
        # only appear first in a useful program if it applies to every input.
        applicable = [
            op
            for op in self.library
            if all(op(src) is not None for src, _ in examples)
        ]
        for depth in range(1, self.max_depth + 1):
            for combo in itertools.product(applicable, repeat=depth):
                tried += 1
                if tried > self.max_candidates:
                    return SearchResult(program=None, candidates_tried=tried)
                program = TransformProgram(operators=combo)
                if program.is_consistent(examples):
                    return SearchResult(program=program, candidates_tried=tried)
        return SearchResult(program=None, candidates_tried=tried)

    def transform(
        self, examples: Sequence[tuple[str, str]], value: str
    ) -> Optional[str]:
        """Convenience: search on ``examples`` and apply the program to ``value``."""
        result = self.search(examples)
        if result.program is None:
            return None
        return result.program(value)


def infer_program(examples: Sequence[tuple[str, str]], max_depth: int = 2) -> Optional[TransformProgram]:
    """Module-level helper: return a consistent program or None."""
    return ProgramSearcher(max_depth=max_depth).search(examples).program
