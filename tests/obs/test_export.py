"""Prometheus exposition tests: renderer structure, real-parser round trip,
and the stats-port content negotiation (HTTP /metrics + legacy JSON line).

Acceptance criterion: the ``--stats-port`` side channel serves text the
reference ``prometheus_client`` parser accepts — verified when that package
is installed (CI), skipped locally (it is NOT a runtime dependency).
"""

import json
import socket

import pytest

from repro.api import Client, TransformationSpec
from repro.obs import (
    ExemplarStore,
    MetricsRegistry,
    get_default_exemplars,
    render_prometheus,
    serve_stats_in_thread,
)

SPEC = TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("batcher.requests").inc(5)
    registry.gauge("engine.inflight").set(3)
    hist = registry.histogram("batcher.queue_wait", (0.5, 1.0))
    for value in (0.2, 0.7, 12.5):
        hist.observe(value)
    return registry


# ------------------------------------------------------------------ renderer
def test_render_prometheus_families_and_values():
    text = render_prometheus(_sample_registry().snapshot())
    lines = text.splitlines()
    assert "# TYPE repro_batcher_requests counter" in lines
    assert "repro_batcher_requests_total 5" in lines
    assert "# TYPE repro_engine_inflight gauge" in lines
    assert "repro_engine_inflight 3" in lines
    assert "repro_engine_inflight_high_water 3" in lines
    # Histogram buckets are cumulative and end at +Inf == count.
    assert 'repro_batcher_queue_wait_bucket{le="0.5"} 1' in lines
    assert 'repro_batcher_queue_wait_bucket{le="1"} 2' in lines
    assert 'repro_batcher_queue_wait_bucket{le="+Inf"} 3' in lines
    assert "repro_batcher_queue_wait_count 3" in lines
    assert text.endswith("\n")


def test_render_prometheus_sanitizes_names_and_prefix():
    registry = MetricsRegistry()
    registry.counter("router.routed.worker-00").inc()
    text = render_prometheus(registry.snapshot(), prefix="x_")
    assert "x_router_routed_worker_00_total 1" in text


def test_render_prometheus_exemplar_comments():
    registry = _sample_registry()
    text = render_prometheus(
        registry.snapshot(),
        exemplars={"batcher.queue_wait": "ab" * 8, "missing.metric": "cd" * 8},
    )
    assert f'# exemplar repro_batcher_queue_wait trace_id="{"ab" * 8}"' in text
    assert "cd" * 8 not in text  # exemplars without a live family are dropped


def test_exemplar_store_keeps_latest_and_ignores_none():
    store = ExemplarStore()
    store.note("a", "11" * 8)
    store.note("a", "22" * 8)
    store.note("b", None)
    assert store.snapshot() == {"a": "22" * 8}
    store.clear()
    assert store.snapshot() == {}


def test_default_exemplars_populated_by_serving_traffic():
    get_default_exemplars().clear()
    from repro.obs import Trace

    with Client.local(seed=0) as client:
        with Trace.start() as trace:
            client.submit_many([SPEC])
    snapshot = get_default_exemplars().snapshot()
    assert snapshot.get("service.batch_latency") == trace.trace_id
    assert any(name.startswith("engine.task_latency.") for name in snapshot)


def test_render_parses_with_reference_prometheus_client():
    parser = pytest.importorskip(
        "prometheus_client.parser", reason="CI-only exposition validator"
    )
    registry = _sample_registry()
    text = render_prometheus(
        registry.snapshot(), exemplars={"batcher.requests": "ab" * 8}
    )
    families = {f.name: f for f in parser.text_string_to_metric_families(text)}
    assert families["repro_batcher_requests"].type == "counter"
    assert families["repro_batcher_requests"].samples[0].value == 5.0
    hist = families["repro_batcher_queue_wait"]
    assert hist.type == "histogram"
    samples = {(s.name, s.labels.get("le")): s.value for s in hist.samples}
    assert samples[("repro_batcher_queue_wait_bucket", "+Inf")] == 3.0
    assert samples[("repro_batcher_queue_wait_count", None)] == 3.0


# ---------------------------------------------------------------- stats port
@pytest.fixture
def live_stats_port():
    from repro.serving import build_service

    service = build_service(seed=0)
    service.handle_batch(
        [{"v": 2, "id": 0, "task": SPEC.to_request() | {"type": "transformation"}}]
    )
    port = serve_stats_in_thread(service.stats_snapshot, "127.0.0.1", 0)
    assert port is not None
    return port


def _http_get(port: int, path: str, method: str = "GET") -> tuple[str, str]:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
        conn.sendall(f"{method} {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
        raw = b""
        while chunk := conn.recv(65536):
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.decode(), body.decode()


def test_stats_port_serves_prometheus_on_metrics_path(live_stats_port):
    head, body = _http_get(live_stats_port, "/metrics")
    assert head.startswith("HTTP/1.0 200")
    assert "text/plain; version=0.0.4" in head
    assert "repro_batcher_requests_total" in body
    assert 'le="+Inf"' in body


def test_stats_port_metrics_parse_with_reference_client(live_stats_port):
    parser = pytest.importorskip(
        "prometheus_client.parser", reason="CI-only exposition validator"
    )
    _, body = _http_get(live_stats_port, "/metrics")
    families = list(parser.text_string_to_metric_families(body))
    names = {f.name for f in families}
    assert any(n.startswith("repro_batcher") for n in names)
    assert any(f.type == "histogram" for f in families)


def test_stats_port_serves_json_on_other_paths(live_stats_port):
    head, body = _http_get(live_stats_port, "/")
    assert head.startswith("HTTP/1.0 200")
    assert "application/json" in head
    payload = json.loads(body)
    assert "metrics" in payload and "service" in payload


def test_stats_port_head_request_omits_the_body(live_stats_port):
    head, body = _http_get(live_stats_port, "/metrics", method="HEAD")
    assert head.startswith("HTTP/1.0 200")
    assert body == ""


def test_stats_port_legacy_silent_client_still_gets_json(live_stats_port):
    # The pre-HTTP contract: connect, send nothing, read one JSON line.
    with socket.create_connection(("127.0.0.1", live_stats_port), timeout=10) as conn:
        line = conn.makefile("r", encoding="utf-8").readline()
    payload = json.loads(line)
    assert "metrics" in payload


# ----------------------------------------------------------------------- CLI
def test_cli_stats_format_prom_over_stats_port(live_stats_port, capsys):
    from repro.__main__ import main

    assert (
        main(["stats", "--stats-port", str(live_stats_port), "--format", "prom"]) == 0
    )
    out = capsys.readouterr().out
    assert "repro_batcher_requests_total" in out
    assert 'le="+Inf"' in out


def test_cli_stats_format_prom_renders_local_snapshot(capsys):
    import asyncio
    import threading

    from repro.__main__ import main
    from repro.serving import build_service

    service = build_service(seed=0)
    service.handle_batch(
        [{"v": 2, "id": 0, "task": SPEC.to_request() | {"type": "transformation"}}]
    )
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(service.start_tcp("127.0.0.1", 0))
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    try:
        assert main(["stats", "--port", str(holder["port"]), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "repro_batcher_requests_total" in out
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
