"""Data transformation benchmarks: StackOverflow and Bing-QueryLogs (TDE).

Each benchmark is a collection of by-example transformation cases: a handful
of (input, output) demonstration pairs plus a held-out input whose output must
be produced.  Three kinds of cases are generated, mirroring the composition of
the TDE benchmark:

* **syntactic** cases expressible by the operator library in
  :mod:`repro.transforms` (dates, phones, casing, ...) — both the TDE baseline
  and the LLM can solve these;
* **semantic** cases requiring world knowledge (country -> ISO-3 code, US state
  -> abbreviation, month name -> number, ...) — registered as ``transformation``
  facts in the knowledge store so only LLM-based methods can solve them, with
  probability scaled by prevalence;
* **hard** cases using custom formats outside both the operator library and
  common knowledge — nobody solves these reliably, which keeps the absolute
  accuracy in the 30-70% band the paper reports.

Bing-QueryLogs uses a harder mix than StackOverflow, reproducing the large gap
between the two columns of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.tasks.transformation import TransformationTask
from ..core.types import TaskType
from ..llm.knowledge import WorldKnowledge
from ..transforms.operators import OPERATORS_BY_NAME
from .base import BenchmarkDataset, DatasetBuilder

# ---------------------------------------------------------------------------
# Syntactic scenarios: generator of source values + operator name.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SyntacticScenario:
    name: str
    operator: str
    make_source: Callable[[np.random.Generator], str]


def _compact_date(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(1990, 2024))}{int(rng.integers(1, 13)):02d}{int(rng.integers(1, 29)):02d}"


def _iso_date(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(1990, 2024))}-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}"


def _us_date(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(1, 13))}/{int(rng.integers(1, 29))}/{int(rng.integers(1990, 2024))}"


def _phone_digits(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(200, 999))}{int(rng.integers(200, 999))}{int(rng.integers(1000, 9999))}"


def _snake_name(rng: np.random.Generator) -> str:
    words = ["user", "name", "count", "total", "page", "view", "click", "rate", "item"]
    k = int(rng.integers(2, 4))
    return "_".join(words[int(rng.integers(len(words)))] for _ in range(k))


def _plain_number(rng: np.random.Generator) -> str:
    return str(int(rng.integers(1_000, 99_000_000)))


def _ip(rng: np.random.Generator) -> str:
    return ".".join(str(int(rng.integers(1, 255))) for _ in range(4))


def _url(rng: np.random.Generator) -> str:
    hosts = ["stackoverflow.com", "github.com", "example.org", "data.gov", "bing.com"]
    return f"https://www.{hosts[int(rng.integers(len(hosts)))]}/page/{int(rng.integers(1, 999))}"


def _full_name(rng: np.random.Generator) -> str:
    first = ["john", "maria", "wei", "fatima", "carlos", "anna", "david", "yuki"]
    last = ["smith", "garcia", "chen", "khan", "mueller", "rossi", "tanaka", "brown"]
    return f"{first[int(rng.integers(len(first)))].title()} {last[int(rng.integers(len(last)))].title()}"


def _address(rng: np.random.Generator) -> str:
    streets = ["main st", "oak ave", "maple dr", "2nd st"]
    states = ["CA", "NY", "TX", "WA", "IL"]
    return (
        f"{int(rng.integers(10, 999))} {streets[int(rng.integers(len(streets)))]} "
        f"Springfield {states[int(rng.integers(len(states)))]} "
        f"{int(rng.integers(10000, 99999))}"
    )


def _seconds(rng: np.random.Generator) -> str:
    return str(int(rng.integers(60, 30_000)))


# Benchmark cases stick to single-token values without commas or embedded
# sentence punctuation, so the by-example prompts stay unambiguous for every
# method (TDE, FM and UniDM all read the same demonstrations).  The remaining
# operators (addresses, names, URLs, thousands separators, ...) are still part
# of the library and are exercised by the unit tests.
SYNTACTIC_SCENARIOS: tuple[SyntacticScenario, ...] = (
    SyntacticScenario("compact-date-to-readable", "compact_date_to_readable", _compact_date),
    SyntacticScenario("compact-date-to-iso", "compact_date_to_iso", _compact_date),
    SyntacticScenario("iso-date-to-us", "iso_date_to_us", _iso_date),
    SyntacticScenario("us-date-to-iso", "us_date_to_iso", _us_date),
    SyntacticScenario("phone-dashes", "digits_to_dashed_phone", _phone_digits),
    SyntacticScenario("snake-to-camel", "snake_to_camel", _snake_name),
    SyntacticScenario("seconds-to-hms", "seconds_to_hms", _seconds),
)

#: Generators kept for library-level tests and examples (not benchmark cases).
EXTRA_VALUE_GENERATORS = {
    "plain_number": _plain_number,
    "ip": _ip,
    "url": _url,
    "full_name": _full_name,
    "address": _address,
}

# ---------------------------------------------------------------------------
# Semantic scenarios: lookup maps an LLM may know but a program search cannot.
# ---------------------------------------------------------------------------

COUNTRY_ISO3 = {
    "germany": "DEU", "italy": "ITA", "france": "FRA", "spain": "ESP",
    "denmark": "DNK", "brazil": "BRA", "japan": "JPN", "canada": "CAN",
    "india": "IND", "australia": "AUS", "mexico": "MEX", "sweden": "SWE",
    "norway": "NOR", "egypt": "EGY", "kenya": "KEN", "chile": "CHL",
}

US_STATE_ABBREV = {
    "california": "CA", "texas": "TX", "florida": "FL",
    "washington": "WA", "illinois": "IL", "oregon": "OR", "georgia": "GA",
    "arizona": "AZ", "colorado": "CO", "ohio": "OH", "michigan": "MI",
    "nevada": "NV",
}

MONTH_NUMBER = {
    "january": "01", "february": "02", "march": "03", "april": "04",
    "may": "05", "june": "06", "july": "07", "august": "08",
    "september": "09", "october": "10", "november": "11", "december": "12",
}

CURRENCY_SYMBOL = {
    "usd": "$", "eur": "€", "gbp": "£", "jpy": "¥", "inr": "₹", "cny": "¥",
}

AIRPORT_CITY = {
    "jfk": "new york", "lax": "los angeles", "sfo": "san francisco",
    "ord": "chicago", "sea": "seattle", "atl": "atlanta", "bos": "boston",
    "cdg": "paris", "nrt": "tokyo", "fra": "frankfurt",
}


@dataclass(frozen=True)
class SemanticScenario:
    name: str
    mapping: dict[str, str]
    prevalence: float
    domain: str


SEMANTIC_SCENARIOS: tuple[SemanticScenario, ...] = (
    SemanticScenario("country-to-iso3", COUNTRY_ISO3, 0.85, "geography"),
    SemanticScenario("state-to-abbrev", US_STATE_ABBREV, 0.85, "geography"),
    SemanticScenario("month-to-number", MONTH_NUMBER, 0.88, "calendar"),
    SemanticScenario("currency-to-symbol", CURRENCY_SYMBOL, 0.70, "finance"),
    SemanticScenario("airport-to-city", AIRPORT_CITY, 0.55, "travel"),
)

# ---------------------------------------------------------------------------
# Hard scenarios: custom formats outside the library and common knowledge.
# ---------------------------------------------------------------------------


def _reverse_tokens(value: str) -> str:
    return " ".join(reversed(value.split()))


def _interleave_dash(value: str) -> str:
    return "-".join(value)


def _custom_id(value: str) -> str:
    digits = "".join(c for c in value if c.isdigit())
    letters = "".join(c for c in value if c.isalpha())
    return f"{letters.upper()[:3]}#{digits[::-1]}"


@dataclass(frozen=True)
class HardScenario:
    name: str
    fn: Callable[[str], str]
    make_source: Callable[[np.random.Generator], str]


HARD_SCENARIOS: tuple[HardScenario, ...] = (
    HardScenario("reverse-tokens", _reverse_tokens, _full_name),
    HardScenario("interleave-dash", _interleave_dash, lambda rng: str(int(rng.integers(100, 99999)))),
    HardScenario("custom-id", _custom_id, lambda rng: f"ab{int(rng.integers(100, 9999))}cd"),
)


@dataclass(frozen=True)
class TransformationCase:
    """One by-example transformation problem with its ground truth."""

    scenario: str
    kind: str  # "syntactic" | "semantic" | "hard"
    examples: list[tuple[str, str]]
    source: str
    target: str


class _TransformationBenchmark(DatasetBuilder):
    """Shared generator; subclasses fix the case mix."""

    task_type = TaskType.DATA_TRANSFORMATION
    #: (syntactic, semantic, hard) case fractions.
    mix: tuple[float, float, float] = (0.6, 0.2, 0.2)

    def __init__(self, seed: int = 0, n_cases: int = 100, n_examples: int = 3):
        super().__init__(seed)
        self.n_cases = n_cases
        self.n_examples = n_examples

    # -- case generation -------------------------------------------------------
    def _syntactic_case(self) -> TransformationCase:
        scenario = self.choice(SYNTACTIC_SCENARIOS)
        operator = OPERATORS_BY_NAME[scenario.operator]
        pairs: list[tuple[str, str]] = []
        seen: set[str] = set()
        while len(pairs) < self.n_examples + 1:
            source = scenario.make_source(self.rng)
            if source in seen:
                continue
            seen.add(source)
            target = operator(source)
            if target is None or target == source:
                continue
            pairs.append((source, target))
        *examples, test = pairs
        return TransformationCase(
            scenario=scenario.name,
            kind="syntactic",
            examples=examples,
            source=test[0],
            target=test[1],
        )

    def _semantic_case(self) -> TransformationCase:
        scenario = self.choice(SEMANTIC_SCENARIOS)
        keys = self.shuffled(sorted(scenario.mapping))
        chosen = keys[: self.n_examples + 1]
        pairs = [(k, scenario.mapping[k]) for k in chosen]
        *examples, test = pairs
        return TransformationCase(
            scenario=scenario.name,
            kind="semantic",
            examples=examples,
            source=test[0],
            target=test[1],
        )

    def _hard_case(self) -> TransformationCase:
        scenario = self.choice(HARD_SCENARIOS)
        pairs: list[tuple[str, str]] = []
        seen: set[str] = set()
        while len(pairs) < self.n_examples + 1:
            source = scenario.make_source(self.rng)
            if source in seen:
                continue
            seen.add(source)
            pairs.append((source, scenario.fn(source)))
        *examples, test = pairs
        return TransformationCase(
            scenario=scenario.name,
            kind="hard",
            examples=examples,
            source=test[0],
            target=test[1],
        )

    def generate_cases(self) -> list[TransformationCase]:
        syn_frac, sem_frac, hard_frac = self.mix
        counts = [
            int(round(self.n_cases * syn_frac)),
            int(round(self.n_cases * sem_frac)),
        ]
        counts.append(self.n_cases - sum(counts))
        cases: list[TransformationCase] = []
        for _ in range(counts[0]):
            cases.append(self._syntactic_case())
        for _ in range(counts[1]):
            cases.append(self._semantic_case())
        for _ in range(counts[2]):
            cases.append(self._hard_case())
        return self.shuffled(cases)

    # -- dataset assembly --------------------------------------------------------
    def build(self) -> BenchmarkDataset:
        knowledge = WorldKnowledge()
        knowledge.set_relation_template(
            "data after transformation", "{subject} can be transformed to {value}"
        )
        # Semantic mappings are things an LLM may know from pre-training.
        for scenario in SEMANTIC_SCENARIOS:
            for source, target in scenario.mapping.items():
                knowledge.add_fact(
                    source, "transformation", target, scenario.prevalence, scenario.domain
                )
        # Hard custom formats are essentially unknown to the corpus.
        cases = self.generate_cases()
        for case in cases:
            if case.kind == "hard":
                knowledge.add_fact(case.source, "transformation", case.target, 0.10, "custom")

        tasks = [
            TransformationTask(case.source, case.examples, name=case.scenario)
            for case in cases
        ]
        ground_truth = [case.target for case in cases]
        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables={},
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
            extra={"cases": cases},
        )


class StackOverflowDataset(_TransformationBenchmark):
    """StackOverflow split of the TDE benchmark (easier mix)."""

    name = "stackoverflow"
    mix = (0.62, 0.20, 0.18)


class BingQueryLogsDataset(_TransformationBenchmark):
    """Bing-QueryLogs split of the TDE benchmark (harder mix)."""

    name = "bing_querylogs"
    mix = (0.30, 0.34, 0.36)
