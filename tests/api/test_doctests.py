"""The docstring examples of the public API must stay runnable.

The ``Client.local`` / ``Client.cluster`` examples (and every other
doctest in the ``repro.api`` and ``repro.cluster`` modules) are executed
here under the tier-1 suite, and again by the CI docs job via
``pytest --doctest-modules src/repro/api``.  A drifting example fails the
build instead of rotting in the docs.
"""

import doctest

import pytest

import repro.api.client
import repro.api.errors
import repro.api.protocol
import repro.api.results
import repro.api.specs
import repro.cluster.hashing

MODULES = [
    repro.api.client,
    repro.api.errors,
    repro.api.protocol,
    repro.api.results,
    repro.api.specs,
    repro.cluster.hashing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_client_examples_are_actually_exercised():
    """Guard: the facade examples exist (not silently deleted)."""
    results = doctest.testmod(repro.api.client, verbose=False)
    assert results.attempted >= 4  # Client.local + Client.cluster examples
