"""Deterministic token bucket — the per-tenant rate limiter.

A classic lazy-refill bucket: ``tokens`` grows at ``rate`` per second up to
``burst`` and every admitted request spends one token (batches spend one per
request).  The clock is injectable, so tests drive time by hand and the
refill math is exactly reproducible — no sleeping, no flaky margins.

Two deliberate policy choices:

* ``rate=None`` disables the bucket entirely (the catch-all ``default``
  tenant's configuration) — ``try_acquire`` always admits.
* A batch larger than ``burst`` could never afford its full price, so it is
  admitted once the bucket is *full* and drives the balance negative.  The
  debt refills at ``rate`` like any other spend, so oversized batches are
  paid for on average — they just cannot be starved forever.  This mirrors
  the oversized-batch rule of :class:`repro.obs.AdmissionController`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """Token bucket with injectable clock and fractional refill.

    Parameters
    ----------
    rate:
        Tokens added per second; ``None`` disables limiting entirely.
    burst:
        Bucket capacity (maximum saved-up tokens).  Defaults to ``rate``
        (one second of traffic), floored at 1.
    clock:
        Monotonic seconds source; injected by tests for determinism.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if burst is not None and burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate) if rate is not None else None
        if self.rate is None:
            self.burst = float(burst) if burst is not None else None
        else:
            self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        self._clock = clock
        self._tokens = self.burst if self.burst is not None else 0.0
        self._updated = clock()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ refill
    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        if self.rate is None or self.burst is None:
            return
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Current balance (after refill); negative while paying off debt."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    # ----------------------------------------------------------------- acquire
    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if affordable; False means rate-limit the work.

        ``n`` larger than ``burst`` is affordable only when the bucket is
        full, and drives the balance negative (debt) — see the module
        docstring for why.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if self.rate is None or self.burst is None:
            return True
        with self._lock:
            self._refill_locked()
            if self._tokens < min(n, self.burst):
                return False
            self._tokens -= n
            return True

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``try_acquire(n)`` could succeed (0.0 when it would now)."""
        if n <= 0:
            raise ValueError("n must be positive")
        if self.rate is None or self.burst is None:
            return 0.0
        with self._lock:
            self._refill_locked()
            need = min(n, self.burst)
            if self._tokens >= need:
                return 0.0
            return (need - self._tokens) / self.rate


__all__ = ["TokenBucket"]
