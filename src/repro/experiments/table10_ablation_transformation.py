"""Table 10 — component ablation of UniDM on the data transformation task.

Only the prompt-side components apply (context retrieval is not used for
transformation), so the ladder toggles target prompt construction and context
data parsing on StackOverflow and Bing-QueryLogs.
"""

from __future__ import annotations

from ..datasets import load_dataset
from ..eval import (
    TRANSFORMATION_ABLATION_LADDER,
    ablation_rows,
    format_table,
    run_ablation,
)
from .common import make_unidm

PAPER_RESULTS: dict[str, list[float]] = {
    # Ladder order: none, +target prompt, +context parsing, both.
    "stackoverflow": [63.3, 65.3, 65.3, 67.4],
    "bing_querylogs": [52.0, 52.0, 54.0, 56.0],
}

DATASETS = ("stackoverflow", "bing_querylogs")


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    rows: list[dict] = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=seed)
        results = run_ablation(
            dataset,
            method_factory=lambda config: make_unidm(dataset, config, seed=seed + 2),
            variants=TRANSFORMATION_ABLATION_LADDER,
            max_tasks=max_tasks,
        )
        for variant_row, paper in zip(
            ablation_rows(results), PAPER_RESULTS[dataset_name]
        ):
            variant_row["dataset"] = dataset_name
            variant_row["paper"] = paper
            rows.append(variant_row)
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["dataset", "variant", "target_prompt", "context_parsing", "score", "paper"],
        title="Table 10 — UniDM component ablation on data transformation (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
