"""Unit tests for the Hospital and Adult error-detection benchmarks."""

from repro.core import ErrorDetectionTask, TaskType
from repro.datasets import load_dataset


def test_hospital_structure(hospital_dataset):
    assert hospital_dataset.task_type is TaskType.ERROR_DETECTION
    assert all(isinstance(t, ErrorDetectionTask) for t in hospital_dataset.tasks)
    checked = hospital_dataset.extra["checked_attributes"]
    assert set(t.attribute for t in hospital_dataset.tasks) == set(checked)


def test_hospital_error_rate_close_to_five_percent(hospital_dataset):
    labels = hospital_dataset.ground_truth
    rate = sum(labels) / len(labels)
    assert 0.02 <= rate <= 0.08


def test_hospital_ground_truth_matches_injections(hospital_dataset):
    errors = hospital_dataset.extra["errors"]
    assert len(errors) == sum(hospital_dataset.ground_truth)
    # Every injected error corresponds to a task labelled True with the dirty value.
    dirty_cells = {(e.record_index, e.attribute): e for e in errors}
    for task, label in zip(hospital_dataset.tasks, hospital_dataset.ground_truth):
        key = (task.record.record_id, task.attribute)
        if label:
            assert key in dirty_cells
            assert str(task.value) == dirty_cells[key].dirty_value


def test_hospital_domains_registered_from_clean_values(hospital_dataset):
    knowledge = hospital_dataset.knowledge
    for task, label in zip(hospital_dataset.tasks, hospital_dataset.ground_truth):
        validity = knowledge.is_valid_value(task.attribute, task.value)
        if label:
            assert validity is False
        # clean cells are valid except when the same clean value also got
        # corrupted elsewhere (cannot happen: domains were captured pre-injection)
        else:
            assert validity is True


def test_adult_contains_rare_but_legitimate_categories():
    dataset = load_dataset("adult", seed=0, n_records=200)
    occupations = dataset.table.value_counts("occupation")
    dirty_values = {e.dirty_value for e in dataset.extra["errors"]}
    rare = [
        v for v, count in occupations.items() if count <= 2 and v not in dirty_values
    ]
    assert rare, "adult benchmark should contain rare legitimate categories"
    # Rare categories are still valid domain values for the detector.
    for value in rare:
        assert dataset.knowledge.is_valid_value("occupation", value) is True
