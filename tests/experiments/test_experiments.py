"""Smoke and structure tests for the per-table experiment modules."""

import math

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    table1_imputation,
    table5_finetune,
    table6_llm_variants,
    table7_tokens,
    table8_9_ablation_imputation,
)


def test_every_paper_table_and_figure_has_an_experiment():
    assert set(ALL_EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5", "table6", "table7",
        "table8_9", "table10", "table11", "figure5",
    }
    for module in ALL_EXPERIMENTS.values():
        assert hasattr(module, "run")
        assert hasattr(module, "main")


def test_table1_rows_cover_all_methods_and_datasets():
    rows = table1_imputation.run(max_tasks=3)
    methods = {row["method"] for row in rows}
    assert {"HoloClean", "CMI", "IMP", "FM (random)", "FM (manual)", "UniDM (random)", "UniDM"} == methods
    datasets = {row["dataset"] for row in rows}
    assert datasets == {"restaurant[3]", "buy[3]"} or datasets == {"restaurant", "buy"}
    for row in rows:
        assert 0 <= row["score"] <= 100
        assert not math.isnan(row["paper"])


def test_table7_unidm_costs_more_tokens_than_fm():
    rows = table7_tokens.run(max_tasks=3)
    by_key = {(row["dataset"], row["method"]): row["tokens_per_query"] for row in rows}
    for dataset in ("restaurant", "buy"):
        assert by_key[(dataset, "UniDM")] > by_key[(dataset, "UniDM (w/o retrieval)")]
        assert by_key[(dataset, "UniDM (w/o retrieval)")] > by_key[(dataset, "FM")]


def test_table6_reports_all_models():
    rows = table6_llm_variants.run(max_tasks=2)
    assert {row["model"] for row in rows} == set(table6_llm_variants.MODELS)
    for row in rows:
        assert "restaurant" in row and "buy" in row


def test_table5_rows_include_finetuned_variants():
    rows = table5_finetune.run(max_tasks=4)
    labels = [row["model"] for row in rows]
    assert "GPT-J-6B (fine-tune)" in labels
    assert "GPT-3-175B" in labels
    llama_raw = next(row for row in rows if row["model"] == "LLaMA2-7B")
    assert math.isnan(llama_raw["fm_paper"])  # the paper reports NA for FM here


def test_table8_9_rows_align_with_paper_reference():
    rows = table8_9_ablation_imputation.run(max_tasks=2)
    assert len(rows) == 2 * len(table8_9_ablation_imputation.PAPER_RESULTS["restaurant"])
    for row in rows:
        assert "paper" in row and "variant" in row


@pytest.mark.parametrize("name", ["table2", "table3", "table10", "table11"])
def test_other_experiments_smoke(name):
    rows = ALL_EXPERIMENTS[name].run(max_tasks=2)
    assert rows
    for row in rows:
        assert isinstance(row, dict)


def test_figure5_produces_curves():
    rows = ALL_EXPERIMENTS["figure5"].run(max_tasks=4, n_probes=1)
    methods = {row["method"] for row in rows}
    assert methods == {"UniDM", "WarpGate"}
    thresholds = {row["threshold"] for row in rows}
    assert len(thresholds) == 6
    for row in rows:
        assert 0 <= row["f1"] <= 100
