"""Common interface for the baseline systems the paper compares against.

Most baselines are dataset-level: they fit on the benchmark's table(s) /
training split and emit one prediction per task instance.  They therefore
implement ``predict_dataset`` rather than the per-task ``solve`` used by the
LLM-driven methods.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from ..datasets.base import BenchmarkDataset


class Baseline(abc.ABC):
    """A non-LLM comparison system."""

    #: Name used in result tables.
    name: str = "baseline"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        """Return one prediction per task instance of the benchmark."""

    def _check_task_type(self, dataset: BenchmarkDataset, expected) -> None:
        if dataset.task_type is not expected:
            raise ValueError(
                f"{self.name} handles {expected.value!r} benchmarks, "
                f"got {dataset.task_type.value!r}"
            )
